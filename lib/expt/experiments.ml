module Table = Dtm_util.Table
module Prng = Dtm_util.Prng
module Schedule = Dtm_core.Schedule
module Topology = Dtm_topology.Topology
module Cluster = Dtm_topology.Cluster
module Star = Dtm_topology.Star
module Blocks = Dtm_topology.Blocks

type result = { table : Dtm_util.Table.t; notes : string list }

let ratio_columns extra =
  extra
  @ [
      ("mean ratio", Table.Right);
      ("worst ratio", Table.Right);
      ("feasible", Table.Right);
    ]

let ratio_cells (mean, worst, ok) =
  [ Runner.fmt_ratio mean; Runner.fmt_ratio worst; string_of_bool ok ]

(* ------------------------------------------------------------------ *)
(* E1: clique (Theorem 1)                                             *)
(* ------------------------------------------------------------------ *)

let e1_clique ~seeds =
  let t =
    Table.create
      ~columns:
        (ratio_columns [ ("n", Table.Right); ("w", Table.Right); ("k", Table.Right) ])
  in
  let run n w k =
    let metric = Dtm_topology.Clique.metric n in
    let audit = Runner.audit (Topology.Clique n) in
    let stats =
      Runner.mean_ratio ~seeds ~audit
        ~gen:(fun rng -> Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k ())
        ~metric
        ~sched:(fun inst -> Dtm_sched.Clique_sched.schedule ~n inst)
        ()
    in
    Table.add_row t
      ([ Table.cell_int n; Table.cell_int w; Table.cell_int k ] @ ratio_cells stats)
  in
  (* Sweep k at fixed n: ratio should grow at most linearly in k. *)
  List.iter (fun k -> run 128 32 k) [ 1; 2; 3; 4; 6; 8 ];
  Table.add_separator t;
  (* Sweep n at fixed k: ratio should stay flat. *)
  List.iter (fun n -> run n 32 3) [ 32; 64; 128; 256; 512 ];
  {
    table = t;
    notes =
      [
        "Theorem 1 claims an O(k) approximation on cliques: the ratio should";
        "scale at most linearly in k (upper block) and be independent of n";
        "(lower block).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E2: hypercube / butterfly (Section 3.1)                            *)
(* ------------------------------------------------------------------ *)

let e2_diameter ~seeds =
  let t =
    Table.create
      ~columns:
        (ratio_columns
           [
             ("graph", Table.Left);
             ("n", Table.Right);
             ("diameter", Table.Right);
             ("k", Table.Right);
           ])
  in
  let run topo k =
    let n = Topology.n topo in
    let metric = Topology.metric topo in
    let w = max 2 (n / 4) in
    let audit = Runner.audit topo in
    let stats =
      Runner.mean_ratio ~seeds ~audit
        ~gen:(fun rng -> Dtm_workload.Uniform.instance ~rng ~n ~num_objects:w ~k ())
        ~metric
        ~sched:(fun inst -> Dtm_sched.Diameter_sched.schedule metric inst)
        ()
    in
    Table.add_row t
      ([
         Topology.to_string topo;
         Table.cell_int n;
         Table.cell_int (Dtm_graph.Metric.diameter metric);
         Table.cell_int k;
       ]
      @ ratio_cells stats)
  in
  List.iter (fun dim -> run (Topology.Hypercube { dim }) 2) [ 4; 5; 6; 7; 8; 9 ];
  Table.add_separator t;
  List.iter (fun dim -> run (Topology.Butterfly { dim }) 2) [ 2; 3; 4; 5 ];
  {
    table = t;
    notes =
      [
        "Section 3.1 claims an O(k log n) approximation on diameter-log-n";
        "graphs: ratios should grow no faster than the diameter column.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E3: line (Theorem 2)                                               *)
(* ------------------------------------------------------------------ *)

let e3_line ~seeds =
  let t =
    Table.create
      ~columns:
        ([
           ("n", Table.Right);
           ("span l", Table.Right);
           ("makespan", Table.Right);
           ("4l bound", Table.Right);
         ]
        @ ratio_columns [])
  in
  List.iter
    (fun n ->
      let metric = Dtm_topology.Line.metric n in
      (* Windowed workloads keep object spans bounded as n grows. *)
      let gen rng =
        Dtm_workload.Arbitrary.windowed ~rng ~n ~num_objects:n ~k:2 ~span:16
      in
      let ms =
        Runner.sweep ~seeds
          ~audit:(Runner.audit (Topology.Line n))
          ~gen ~metric
          ~sched:(fun inst -> Dtm_sched.Line_sched.schedule ~n inst)
          ()
      in
      (* Spans come from regenerating each seed's instance: [sweep] runs
         on the domain pool, so the scheduler closure must not mutate
         shared state. *)
      let span =
        List.fold_left
          (fun a seed ->
            max a (Dtm_sched.Line_sched.span (gen (Prng.create ~seed))))
          0 seeds
      in
      let mk = List.fold_left (fun a m -> max a m.Runner.makespan) 0 ms in
      Table.add_row t
        ([
           Table.cell_int n;
           Table.cell_int span;
           Table.cell_int mk;
           Table.cell_int (4 * span);
         ]
        @ ratio_cells (Runner.summarize ms)))
    [ 64; 128; 256; 512; 1024; 2048; 4096 ];
  {
    table = t;
    notes =
      [
        "Theorem 2 claims asymptotic optimality on lines: the makespan never";
        "exceeds 4l, and the ratio to the certified lower bound stays flat";
        "as n grows 64 -> 4096.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E4: grid (Theorem 3)                                               *)
(* ------------------------------------------------------------------ *)

let e4_grid ~seeds =
  let t =
    Table.create
      ~columns:
        (ratio_columns
           [
             ("grid", Table.Left);
             ("w", Table.Right);
             ("k", Table.Right);
             ("k*log m", Table.Right);
           ])
  in
  let run side w k =
    let rows = side and cols = side in
    let metric = Dtm_topology.Grid.metric ~rows ~cols in
    let m = float_of_int (max side w) in
    let audit = Runner.audit (Topology.Grid { rows; cols }) in
    let stats =
      Runner.mean_ratio ~seeds ~audit
        ~gen:(fun rng ->
          Dtm_workload.Uniform.instance ~rng ~n:(rows * cols) ~num_objects:w ~k ())
        ~metric
        ~sched:(fun inst -> Dtm_sched.Grid_sched.schedule ~rows ~cols inst)
        ()
    in
    Table.add_row t
      ([
         Printf.sprintf "%dx%d" side side;
         Table.cell_int w;
         Table.cell_int k;
         Table.cell_float (float_of_int k *. log m);
       ]
      @ ratio_cells stats)
  in
  List.iter (fun k -> run 16 32 k) [ 1; 2; 3; 4 ];
  Table.add_separator t;
  List.iter (fun side -> run side (2 * side) 2) [ 8; 12; 16; 24; 32 ];
  {
    table = t;
    notes =
      [
        "Theorem 3 claims an O(k log m) approximation for random k-subsets";
        "on grids: the measured ratio should stay below a small multiple of";
        "the k*log m column.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E5: cluster (Theorem 4)                                            *)
(* ------------------------------------------------------------------ *)

let e5_cluster ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("beta", Table.Right);
          ("gamma", Table.Right);
          ("sigma", Table.Right);
          ("approach1 ratio", Table.Right);
          ("approach2 ratio", Table.Right);
          ("best ratio", Table.Right);
          ("feasible", Table.Right);
        ]
  in
  List.iter
    (fun beta ->
      let p = { Cluster.clusters = 6; size = beta; bridge_weight = 2 * beta } in
      let metric = Cluster.metric p in
      let gen rng =
        Dtm_workload.Arbitrary.cluster_spread ~rng p ~num_objects:(3 * 6) ~k:2
          ~sigma:4
      in
      let audit = Runner.audit (Topology.Cluster p) in
      let collect approach =
        Runner.mean_ratio ~seeds ~audit ~gen ~metric
          ~sched:(fun inst -> Dtm_sched.Cluster_sched.schedule ~approach p inst)
          ()
      in
      let r1, _, ok1 = collect Dtm_sched.Cluster_sched.Approach1 in
      let r2, _, ok2 = collect (Dtm_sched.Cluster_sched.Approach2 { seed = 9 }) in
      let rb, _, okb = collect (Dtm_sched.Cluster_sched.Best { seed = 9 }) in
      let sigma =
        let rng = Prng.create ~seed:(List.hd seeds) in
        Dtm_sched.Cluster_sched.sigma p (gen rng)
      in
      Table.add_row t
        [
          Table.cell_int beta;
          Table.cell_int (2 * beta);
          Table.cell_int sigma;
          Runner.fmt_ratio r1;
          Runner.fmt_ratio r2;
          Runner.fmt_ratio rb;
          string_of_bool (ok1 && ok2 && okb);
        ])
    [ 2; 4; 8; 16; 32 ];
  {
    table = t;
    notes =
      [
        "Theorem 4's factor is O(min(k*beta, 40^k ln^k m)).  Both approaches";
        "stay well inside their proven factors.  Note the crossover in favor";
        "of Approach 2 needs k*beta > 40^k ln^k m (~10^4 for k = 2), far";
        "beyond laptop-scale beta; at these sizes Approach 1 additionally";
        "benefits from node-id ordering batching each cluster, so it wins";
        "outright while Approach 2 pays its per-round constant.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E6: star (Theorem 5)                                               *)
(* ------------------------------------------------------------------ *)

let e6_star ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("rays", Table.Right);
          ("beta", Table.Right);
          ("periods", Table.Right);
          ("greedy ratio", Table.Right);
          ("randomized ratio", Table.Right);
          ("best ratio", Table.Right);
          ("feasible", Table.Right);
        ]
  in
  List.iter
    (fun ray_len ->
      let p = { Star.rays = 6; ray_len } in
      let n = 1 + (p.Star.rays * ray_len) in
      let metric = Star.metric p in
      let gen rng =
        Dtm_workload.Uniform.instance ~rng ~n ~num_objects:(max 2 (n / 4)) ~k:2 ()
      in
      let audit = Runner.audit (Topology.Star p) in
      let collect variant =
        Runner.mean_ratio ~seeds ~audit ~gen ~metric
          ~sched:(fun inst -> Dtm_sched.Star_sched.schedule ~variant p inst)
          ()
      in
      let rg, _, okg = collect Dtm_sched.Star_sched.Greedy_periods in
      let rr, _, okr =
        collect (Dtm_sched.Star_sched.Randomized_periods { seed = 5 })
      in
      let rb, _, okb = collect (Dtm_sched.Star_sched.Best_periods { seed = 5 }) in
      Table.add_row t
        [
          Table.cell_int p.Star.rays;
          Table.cell_int ray_len;
          Table.cell_int (Star.num_segments p);
          Runner.fmt_ratio rg;
          Runner.fmt_ratio rr;
          Runner.fmt_ratio rb;
          string_of_bool (okg && okr && okb);
        ])
    [ 3; 7; 15; 31; 63 ];
  {
    table = t;
    notes =
      [
        "Theorem 5's factor is O(log beta * min(k*beta, c^k ln^k m)): the";
        "measured ratios grow far slower than beta (roughly with log beta),";
        "matching the theorem.  As in E5, the randomized periods' poly-log";
        "advantage over greedy periods only materializes for beta beyond";
        "laptop scale; both variants stay inside the proven factor.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E7: the Section 8 gap (Theorem 6)                                  *)
(* ------------------------------------------------------------------ *)

let e7_lower_bound ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("carrier", Table.Left);
          ("s", Table.Right);
          ("nodes", Table.Right);
          ("max TSP walk", Table.Right);
          ("makespan", Table.Right);
          ("makespan/walk", Table.Right);
        ]
  in
  let run name metric_of s =
    let p = Blocks.make ~s in
    let metric = metric_of p in
    let gaps =
      Dtm_util.Pool.run
        (fun seed ->
          let rng = Prng.create ~seed in
          let inst = Dtm_workload.Lb_instance.instance ~rng p in
          let lb = Dtm_core.Lower_bound.compute metric inst in
          let sched = Dtm_core.Greedy.schedule metric inst in
          let compacted = Dtm_sim.Engine.compact metric inst sched in
          let mk =
            min (Schedule.makespan sched) (Schedule.makespan compacted)
          in
          (lb.Dtm_core.Lower_bound.max_walk, mk))
        seeds
    in
    let walk = List.fold_left (fun a (w, _) -> max a w) 0 gaps in
    let mk =
      int_of_float
        (Dtm_util.Stats.mean
           (Array.of_list (List.map (fun (_, m) -> float_of_int m) gaps)))
    in
    Table.add_row t
      [
        name;
        Table.cell_int s;
        Table.cell_int (Blocks.n p);
        Table.cell_int walk;
        Table.cell_int mk;
        Table.cell_float (float_of_int mk /. float_of_int (max 1 walk));
      ]
  in
  List.iter (run "block grid" Dtm_topology.Block_grid.metric) [ 4; 9; 16; 25 ];
  Table.add_separator t;
  List.iter (run "block tree" Dtm_topology.Block_tree.metric) [ 4; 9; 16; 25 ];
  {
    table = t;
    notes =
      [
        "Theorem 6: on the Section 8 instances every schedule's makespan";
        "must outgrow the objects' TSP tours; the makespan/walk column";
        "should increase with s on both carriers (the paper proves an";
        "Omega(n^(1/40)/log n) asymptotic separation).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E8: the greedy framework (Section 2.3)                             *)
(* ------------------------------------------------------------------ *)

let e8_greedy ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("strategy/order", Table.Left);
          ("mean colors", Table.Right);
          ("mean Gamma+1", Table.Right);
          ("colors <= Gamma+1", Table.Right);
          ("valid", Table.Right);
        ]
  in
  let cases =
    [
      ("slotted/natural", Dtm_core.Coloring.Slotted, Dtm_core.Coloring.Natural);
      ("slotted/desc-degree", Dtm_core.Coloring.Slotted, Dtm_core.Coloring.Desc_degree);
      ("compact/natural", Dtm_core.Coloring.Compact, Dtm_core.Coloring.Natural);
      ("compact/desc-degree", Dtm_core.Coloring.Compact, Dtm_core.Coloring.Desc_degree);
      ("compact/random", Dtm_core.Coloring.Compact, Dtm_core.Coloring.Random_order 17);
    ]
  in
  List.iter
    (fun (name, strategy, order) ->
      let per_seed =
        Dtm_util.Pool.run
          (fun seed ->
            let rng = Prng.create ~seed in
            (* A weighted topology (cluster, h_max = gamma + 2) separates the
               slotted and compact strategies; on unit metrics they agree. *)
            let p = { Cluster.clusters = 4; size = 24; bridge_weight = 8 } in
            let n = p.Cluster.clusters * p.Cluster.size in
            let inst =
              Dtm_workload.Uniform.instance ~rng ~n ~num_objects:24 ~k:3 ()
            in
            let metric = Cluster.metric p in
            let dep = Dtm_core.Dependency.build metric inst in
            let c = Dtm_core.Coloring.greedy ~strategy ~order dep inst in
            let gamma1 = Dtm_core.Dependency.weighted_degree dep + 1 in
            ( float_of_int c.Dtm_core.Coloring.num_colors,
              float_of_int gamma1,
              not
                (strategy = Dtm_core.Coloring.Slotted
                && c.Dtm_core.Coloring.num_colors > gamma1),
              Dtm_core.Coloring.is_valid dep inst c.Dtm_core.Coloring.colors ))
          seeds
      in
      let pick f = Array.of_list (List.map f per_seed) in
      Table.add_row t
        [
          name;
          Table.cell_float (Dtm_util.Stats.mean (pick (fun (c, _, _, _) -> c)));
          Table.cell_float (Dtm_util.Stats.mean (pick (fun (_, g, _, _) -> g)));
          string_of_bool (List.for_all (fun (_, _, w, _) -> w) per_seed);
          string_of_bool (List.for_all (fun (_, _, _, v) -> v) per_seed);
        ])
    cases;
  {
    table = t;
    notes =
      [
        "Section 2.3: the slotted greedy scheme stays within Gamma + 1";
        "colors.  On this weighted (cluster) metric h_max = gamma + 2 > 1,";
        "so the compact variant packs colors far more tightly than the";
        "paper's h_max-spaced slots.  Ordering matters too: natural node-id";
        "order visits clusters contiguously and colors cheapest, while";
        "degree or random orders interleave clusters and pay gamma gaps.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E9: congestion (extension; paper Section 9)                        *)
(* ------------------------------------------------------------------ *)

let e9_congestion ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("capacity", Table.Left);
          ("mean makespan", Table.Right);
          ("slowdown", Table.Right);
          ("mean max queue", Table.Right);
        ]
  in
  let topologies =
    [
      Topology.Star { Star.rays = 6; ray_len = 5 };
      Topology.Clique 31;
      Topology.Grid { rows = 6; cols = 6 };
    ]
  in
  List.iter
    (fun topo ->
      let n = Topology.n topo in
      let g = Topology.graph topo and metric = Topology.metric topo in
      (* One warmed, frozen (domain-safe) router per topology, shared by
         every seed's congestion run across the pool's domains. *)
      let router = Dtm_sim.Router.create g in
      Dtm_sim.Router.warm_all router;
      let router = Dtm_sim.Router.freeze router in
      let runs capacity =
        Dtm_util.Pool.run
          (fun seed ->
            let rng = Prng.create ~seed in
            let inst =
              Dtm_workload.Uniform.instance ~rng ~n ~num_objects:(max 2 (n / 4))
                ~k:2 ()
            in
            let priority = Dtm_sim.Engine.run metric inst in
            let r =
              match capacity with
              | None -> Dtm_sim.Congestion.run ~router g inst ~priority
              | Some c ->
                Dtm_sim.Congestion.run ~router ~capacity:c g inst ~priority
            in
            (* Trace-audit gate: the realized execution must pass every
               DTM11x lint, including the per-edge admission bound. *)
            (match
               Dtm_analysis.Trace_lint.check ?capacity ~graph:g ~metric inst
                 ~commits:r.Dtm_sim.Congestion.commit_times
                 r.Dtm_sim.Congestion.trace
             with
            | [] -> ()
            | d :: _ ->
              failwith
                ("e9: congestion trace fails its audit: "
                ^ Dtm_analysis.Diagnostic.render d));
            ( float_of_int r.Dtm_sim.Congestion.makespan,
              float_of_int r.Dtm_sim.Congestion.max_queue ))
          seeds
      in
      let mean xs = Dtm_util.Stats.mean (Array.of_list xs) in
      let base = mean (List.map fst (runs None)) in
      List.iter
        (fun (label, capacity) ->
          let rs = runs capacity in
          let mk = mean (List.map fst rs) in
          let q = mean (List.map snd rs) in
          Table.add_row t
            [
              Topology.to_string topo;
              label;
              Table.cell_float mk;
              Table.cell_float (mk /. base);
              Table.cell_float q;
            ])
        [ ("inf", None); ("4", Some 4); ("2", Some 2); ("1", Some 1) ];
      Table.add_separator t)
    topologies;
  {
    table = t;
    notes =
      [
        "Extension of the model per Section 9: per-edge admission bounds.";
        "Star topologies funnel every cross-ray transfer through the hub,";
        "so capacity 1 hurts them most; cliques have edge diversity and";
        "barely notice.  Slowdown is relative to unbounded capacity.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E10: time vs communication (Section 1.2 discussion)                *)
(* ------------------------------------------------------------------ *)

let e10_tradeoff ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("scheduler", Table.Left);
          ("mean makespan", Table.Right);
          ("mean messages", Table.Right);
          ("feasible", Table.Right);
        ]
  in
  let rows = 10 and cols = 10 in
  let n = rows * cols in
  let metric = Dtm_topology.Grid.metric ~rows ~cols in
  let g = Topology.graph (Topology.Grid { rows; cols }) in
  (* One warmed, frozen router for the whole sweep (the E9 pattern):
     every seed of every scheduler replays on the shared snapshot. *)
  let router = Dtm_sim.Router.create g in
  Dtm_sim.Router.warm_all router;
  let router = Dtm_sim.Router.freeze router in
  let schedulers =
    [
      ("grid subgrids (Thm 3)", fun inst -> Dtm_sched.Grid_sched.schedule ~rows ~cols inst);
      ("basic greedy (Sec 2.3)", fun inst -> Dtm_core.Greedy.schedule metric inst);
      ("online engine", fun inst -> Dtm_sim.Engine.run metric inst);
      ("serial node order", fun inst -> Dtm_sched.Baseline.sequential metric inst);
      ("serial nearest-first", fun inst -> Dtm_sched.Baseline.nearest_first metric inst);
    ]
  in
  List.iter
    (fun (name, sched) ->
      let per_seed =
        Dtm_util.Pool.run
          (fun seed ->
            let rng = Prng.create ~seed in
            (* Partitioned workload: plenty of parallelism for the fast
               schedulers, while the visit order still dominates travel --
               so minimizing one cost visibly sacrifices the other. *)
            let inst =
              Dtm_workload.Arbitrary.partitioned ~rng ~n ~num_objects:16 ~k:2
                ~parts:8
            in
            let s = sched inst in
            (* Replay on the shared frozen router and audit the trace;
               the feasible column now also certifies physical motion. *)
            let r = Dtm_sim.Replay.run ~router g inst s in
            let audited =
              r.Dtm_sim.Replay.ok
              && Dtm_analysis.Trace_lint.check ~graph:g ~metric inst ~commits:s
                   r.Dtm_sim.Replay.trace
                 = []
            in
            ( float_of_int (Schedule.makespan s),
              float_of_int (Dtm_core.Cost.communication metric inst s),
              Dtm_core.Validator.is_feasible metric inst s && audited ))
          seeds
      in
      Table.add_row t
        [
          name;
          Table.cell_float
            (Dtm_util.Stats.mean
               (Array.of_list (List.map (fun (m, _, _) -> m) per_seed)));
          Table.cell_float
            (Dtm_util.Stats.mean
               (Array.of_list (List.map (fun (_, c, _) -> c) per_seed)));
          string_of_bool (List.for_all (fun (_, _, ok) -> ok) per_seed);
        ])
    schedulers;
  {
    table = t;
    notes =
      [
        "Busch et al. (PODC 2015) prove makespan and communication cannot";
        "always be minimized simultaneously.  The measured Pareto structure";
        "shows the tension: the online engine is fast but travel-heavy,";
        "the serial nearest-first tour is travel-light but slow, and";
        "neither dominates the other.  The Theorem 3 scheduler happens to";
        "win both here because the partitioned workload aligns its subgrid";
        "order with the objects' communities.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E11: lower-bound tightness via exact optima                        *)
(* ------------------------------------------------------------------ *)

let e11_lb_tightness ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("mean OPT/LB", Table.Right);
          ("mean greedy/OPT", Table.Right);
          ("worst greedy/OPT", Table.Right);
        ]
  in
  let topologies =
    [ Topology.Clique 7; Topology.Line 7; Topology.Ring 8; Topology.Grid { rows = 2; cols = 4 } ]
  in
  List.iter
    (fun topo ->
      let n = Topology.n topo in
      let metric = Topology.metric topo in
      let per_seed =
        Dtm_util.Pool.run
          (fun seed ->
            (* Several small instances per seed for statistical weight;
               the accumulator is task-local, so the rng draws keep their
               sequential order within the seed. *)
            let rng = Prng.create ~seed in
            let acc = ref [] in
            for _ = 1 to 5 do
              let inst =
                Dtm_workload.Uniform.instance ~rng ~n ~num_objects:3 ~k:2 ()
              in
              let opt = Dtm_sim.Optimal.makespan metric inst in
              (* Cross-validate the two independent exhaustive searches:
                 the model checker's state-space optimum must equal the
                 permutation search's on every instance measured. *)
              let mc = Dtm_analysis.Model_check.optimum metric inst in
              if mc <> opt then
                failwith
                  (Printf.sprintf
                     "e11: Model_check optimum %d <> Optimal.exhaustive %d" mc
                     opt);
              let lb = Dtm_core.Lower_bound.certified metric inst in
              let greedy =
                Schedule.makespan (Dtm_core.Greedy.schedule metric inst)
              in
              acc :=
                ( float_of_int opt /. float_of_int (max 1 lb),
                  float_of_int greedy /. float_of_int (max 1 opt) )
                :: !acc
            done;
            List.rev !acc)
          seeds
        |> List.concat
      in
      let opt_lb = List.map fst per_seed and greedy_opt = List.map snd per_seed in
      let arr l = Array.of_list l in
      Table.add_row t
        [
          Topology.to_string topo;
          Table.cell_float (Dtm_util.Stats.mean (arr opt_lb));
          Table.cell_float (Dtm_util.Stats.mean (arr greedy_opt));
          Table.cell_float (snd (Dtm_util.Stats.min_max (arr greedy_opt)));
        ])
    topologies;
  {
    table = t;
    notes =
      [
        "OPT computed exhaustively (list schedules over all priority";
        "orders are makespan-complete).  OPT/LB close to 1 means the";
        "certified walk/load lower bound is tight on small instances, so";
        "the ratios reported in E1-E6 are honest upper estimates of the";
        "schedulers' true approximation factors.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E12: ring extension                                                *)
(* ------------------------------------------------------------------ *)

let e12_ring ~seeds =
  let t =
    Table.create
      ~columns:
        ([
           ("n", Table.Right);
           ("span l", Table.Right);
           ("makespan", Table.Right);
           ("9l bound", Table.Right);
         ]
        @ ratio_columns [])
  in
  List.iter
    (fun n ->
      let metric = Dtm_topology.Ring.metric n in
      let gen rng =
        Dtm_workload.Arbitrary.windowed ~rng ~n ~num_objects:n ~k:2 ~span:16
      in
      let ms =
        Runner.sweep ~seeds
          ~audit:(Runner.audit (Topology.Ring n))
          ~gen ~metric
          ~sched:(fun inst -> Dtm_sched.Ring_sched.schedule ~n inst)
          ()
      in
      let span =
        List.fold_left
          (fun a seed ->
            max a (Dtm_sched.Ring_sched.span ~n (gen (Prng.create ~seed))))
          0 seeds
      in
      let mk = List.fold_left (fun a m -> max a m.Runner.makespan) 0 ms in
      Table.add_row t
        ([
           Table.cell_int n;
           Table.cell_int span;
           Table.cell_int mk;
           Table.cell_int (9 * span);
         ]
        @ ratio_cells (Runner.summarize ms)))
    [ 64; 128; 256; 512; 1024; 2048 ];
  {
    table = t;
    notes =
      [
        "Extension of Theorem 2 to cycles: arcs of length >= l with a";
        "third phase absorbing the odd wrap-around arc.  Makespan stays";
        "below 9l and the ratio is flat in n, mirroring the line result.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E13: read replication (Section 1.2 remark)                         *)
(* ------------------------------------------------------------------ *)

let e13_replication ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("write fraction", Table.Right);
          ("mean makespan", Table.Right);
          ("vs all-write", Table.Right);
          ("mean ratio", Table.Right);
          ("mean conflicts", Table.Right);
          ("feasible", Table.Right);
        ]
  in
  let n = 96 in
  let metric = Dtm_topology.Clique.metric n in
  let g = Topology.graph (Topology.Clique n) in
  (* One warmed, frozen router shared by every seed and write fraction
     (the E9 pattern); it drives the master-copy replay audit below. *)
  let router = Dtm_sim.Router.create g in
  Dtm_sim.Router.warm_all router;
  let router = Dtm_sim.Router.freeze router in
  (* The master copy of each object migrates between its writers exactly
     as in the base model, so the writers-only projection of an rw
     instance must replay cleanly under the same schedule: that is the
     trace-audit gate for this table. *)
  let writers_projection rw =
    let base = Dtm_core.Rw_instance.base rw in
    let txns =
      Array.to_list (Dtm_core.Instance.txn_nodes base)
      |> List.filter_map (fun v ->
             match Dtm_core.Instance.txn_at base v with
             | None -> None
             | Some objs ->
               let written =
                 Array.to_list objs
                 |> List.filter (fun o ->
                        Dtm_core.Rw_instance.is_write rw ~node:v ~obj:o)
               in
               if written = [] then None else Some (v, written))
    in
    if txns = [] then None
    else
      let w = Dtm_core.Instance.num_objects base in
      let home = Array.init w (Dtm_core.Instance.home base) in
      Some (Dtm_core.Instance.create ~n ~num_objects:w ~home ~txns)
  in
  let measure write_fraction =
    let per_seed =
      Dtm_util.Pool.run
        (fun seed ->
          let rng = Prng.create ~seed in
          let rw =
            Dtm_workload.Rw_uniform.instance ~rng ~n ~num_objects:12 ~k:3
              ~write_fraction
          in
          let s = Dtm_core.Rw_greedy.schedule metric rw in
          let lb = Dtm_core.Rw_lower_bound.certified metric rw in
          let audited =
            match writers_projection rw with
            | None -> true
            | Some sub ->
              let r = Dtm_sim.Replay.run ~router g sub s in
              r.Dtm_sim.Replay.ok
              && Dtm_analysis.Trace_lint.check ~graph:g ~metric sub ~commits:s
                   r.Dtm_sim.Replay.trace
                 = []
          in
          ( float_of_int (Schedule.makespan s),
            float_of_int (Schedule.makespan s) /. float_of_int (max 1 lb),
            float_of_int (List.length (Dtm_core.Rw_greedy.conflict_pairs rw)),
            Dtm_core.Rw_validator.is_feasible metric rw s && audited ))
        seeds
    in
    let mean f = Dtm_util.Stats.mean (Array.of_list (List.map f per_seed)) in
    ( mean (fun (m, _, _, _) -> m),
      mean (fun (_, r, _, _) -> r),
      mean (fun (_, _, p, _) -> p),
      List.for_all (fun (_, _, _, ok) -> ok) per_seed )
  in
  let base_mk, _, _, _ = measure 1.0 in
  List.iter
    (fun wf ->
      let mk, ratio, pairs, ok = measure wf in
      Table.add_row t
        [
          Table.cell_float ~decimals:2 wf;
          Table.cell_float mk;
          Table.cell_float (mk /. base_mk);
          Table.cell_float ratio;
          Table.cell_float pairs;
          string_of_bool ok;
        ])
    [ 1.0; 0.5; 0.25; 0.1; 0.0 ];
  {
    table = t;
    notes =
      [
        "Section 1.2 remarks the data-flow results extend to replicated /";
        "multiversion models.  With read replication only write-involved";
        "pairs conflict: as the write fraction falls the dependency graph";
        "thins and the makespan collapses toward 1 (fully read-only).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E14: online policies (Section 9 open problem #1)                   *)
(* ------------------------------------------------------------------ *)

let e14_online ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("policy", Table.Left);
          ("mean makespan", Table.Right);
          ("mean response", Table.Right);
          ("p95 response", Table.Right);
          ("forced grants", Table.Right);
          ("preemptions", Table.Right);
        ]
  in
  let topologies =
    [ Topology.Clique 24; Topology.Grid { rows = 5; cols = 5 }; Topology.Star { Star.rays = 6; ray_len = 4 } ]
  in
  let policies =
    [
      Dtm_online.Policy.Timestamp { preemption = false };
      Dtm_online.Policy.Timestamp { preemption = true };
      Dtm_online.Policy.Nearest;
      Dtm_online.Policy.Random_grant 3;
    ]
  in
  List.iter
    (fun topo ->
      let n = Topology.n topo in
      let metric = Topology.metric topo in
      List.iter
        (fun policy ->
          let per_seed =
            Dtm_util.Pool.run
              (fun seed ->
                let rng = Prng.create ~seed in
                let s =
                  Dtm_online.Stream.uniform ~rng ~n ~num_objects:(max 2 (n / 3))
                    ~k:2 ~txns_per_node:4 ~mean_gap:3
                in
                let homes = Dtm_online.Stream.initial_homes ~rng s in
                Dtm_online.Runner.run ~policy metric s ~homes)
              seeds
          in
          let mean f = Dtm_util.Stats.mean (Array.of_list (List.map f per_seed)) in
          let sum f = List.fold_left (fun a r -> a + f r) 0 per_seed in
          Table.add_row t
            [
              Topology.to_string topo;
              Dtm_online.Policy.to_string policy;
              Table.cell_float
                (mean (fun r -> float_of_int r.Dtm_online.Runner.makespan));
              Table.cell_float (mean (fun r -> r.Dtm_online.Runner.mean_response));
              Table.cell_float (mean (fun r -> r.Dtm_online.Runner.p95_response));
              Table.cell_int (sum (fun r -> r.Dtm_online.Runner.forced_grants));
              Table.cell_int (sum (fun r -> r.Dtm_online.Runner.preemptions));
            ])
        policies;
      Table.add_separator t)
    topologies;
  {
    table = t;
    notes =
      [
        "Section 9's first open problem, made executable: transactions";
        "arrive continuously and contention-management policies decide who";
        "gets each released object.  The preemptive timestamp policy (the";
        "classic Greedy contention manager) never needs deadlock recovery";
        "and dominates throughout; non-preemptive policies deadlock under";
        "k = 2 cross-requests and pay the watchdog's 50-step patience per";
        "recovery, which dominates the nearest/random makespans.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E15: scheduler scalability (wall-clock growth)                     *)
(* ------------------------------------------------------------------ *)

let e15_scaling ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("scheduler", Table.Left);
          ("n range", Table.Left);
          ("time at max n (ms)", Table.Right);
          ("empirical exponent", Table.Right);
        ]
  in
  let time_once f =
    let t0 = Sys.time () in
    ignore (f ());
    (Sys.time () -. t0) *. 1000.0
  in
  let measure name sizes build =
    let pts =
      List.map
        (fun n ->
          let ms =
            List.map
              (fun seed ->
                let rng = Prng.create ~seed in
                let run = build rng n in
                time_once run)
              seeds
            |> Array.of_list |> Dtm_util.Stats.mean
          in
          (float_of_int n, max 1e-6 ms))
        sizes
    in
    let last = snd (List.nth pts (List.length pts - 1)) in
    let expo = Dtm_util.Stats.log2_slope (Array.of_list pts) in
    Table.add_row t
      [
        name;
        Printf.sprintf "%d..%d"
          (int_of_float (fst (List.hd pts)))
          (int_of_float (fst (List.nth pts (List.length pts - 1))));
        Table.cell_float last;
        Table.cell_float expo;
      ]
  in
  measure "clique greedy (Thm 1)" [ 64; 128; 256; 512 ] (fun rng n ->
      let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:(n / 4) ~k:3 () in
      fun () -> Dtm_sched.Clique_sched.schedule ~n inst);
  measure "line sweep (Thm 2)" [ 512; 1024; 2048; 4096 ] (fun rng n ->
      let inst =
        Dtm_workload.Arbitrary.windowed ~rng ~n ~num_objects:n ~k:2 ~span:16
      in
      fun () -> Dtm_sched.Line_sched.schedule ~n inst);
  measure "ring sweep (ext)" [ 512; 1024; 2048; 4096 ] (fun rng n ->
      let inst =
        Dtm_workload.Arbitrary.windowed ~rng ~n ~num_objects:n ~k:2 ~span:16
      in
      fun () -> Dtm_sched.Ring_sched.schedule ~n inst);
  measure "grid subgrids (Thm 3)" [ 64; 144; 256; 576 ] (fun rng n ->
      let side = int_of_float (sqrt (float_of_int n) +. 0.5) in
      let inst =
        Dtm_workload.Uniform.instance ~rng ~n:(side * side)
          ~num_objects:(2 * side) ~k:2 ()
      in
      fun () -> Dtm_sched.Grid_sched.schedule ~rows:side ~cols:side inst);
  measure "online engine" [ 128; 256; 512; 1024 ] (fun rng n ->
      let inst = Dtm_workload.Uniform.instance ~rng ~n ~num_objects:(n / 4) ~k:2 () in
      let metric = Dtm_topology.Clique.metric n in
      fun () -> Dtm_sim.Engine.run metric inst);
  {
    table = t;
    notes =
      [
        "Not a paper claim - release hygiene: all schedulers are";
        "low-polynomial (the exponent column is the log-log slope of mean";
        "wall-clock against n), so the library scales to the sizes the";
        "experiments use with plenty of headroom.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E16: open-system stability (continual arrivals)                    *)
(* ------------------------------------------------------------------ *)

let e16_stability ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("policy", Table.Left);
          ("rho*", Table.Right);
          ("verdict @0.30", Table.Left);
          ("peak q", Table.Right);
          ("p50", Table.Right);
          ("p99", Table.Right);
          ("p999", Table.Right);
          ("forced", Table.Right);
        ]
  in
  let topologies =
    [
      Topology.Clique 16;
      Topology.Line 16;
      Topology.Grid { rows = 4; cols = 4 };
      Topology.Cluster { Cluster.clusters = 4; size = 4; bridge_weight = 2 };
      Topology.Hypercube { dim = 4 };
      Topology.Butterfly { dim = 2 };
      Topology.Star { Star.rays = 5; ray_len = 3 };
    ]
  in
  let policies =
    [
      Dtm_online.Policy.Timestamp { preemption = false };
      Dtm_online.Policy.Timestamp { preemption = true };
      Dtm_online.Policy.Nearest;
      Dtm_online.Policy.Random_grant 3;
      Dtm_online.Policy.Window_greedy { window = 16; seed = 1 };
    ]
  in
  (* The bisection already multiplies the run count, so the sweep fixes
     the workload seed to the first requested seed instead of averaging
     over all of them. *)
  let seed = match seeds with s :: _ -> s | [] -> 1 in
  let reference_rate = 0.30 in
  let rho_lo = 0.05 and rho_hi = 1.60 in
  let cells =
    List.concat_map
      (fun topo -> List.map (fun policy -> (topo, policy)) policies)
      topologies
  in
  let rows =
    Dtm_util.Pool.run
      (fun (topo, policy) ->
        let n = Topology.n topo in
        let metric = Topology.metric topo in
        let spec rate =
          {
            Dtm_workload.Injection.n;
            num_objects = 2 * n;
            k = 2;
            rate;
            burst = 4;
            dist = Dtm_workload.Injection.Zipf_objects 1.1;
            seed;
          }
        in
        let homes = Dtm_workload.Injection.homes (spec reference_rate) in
        (* The cap keeps clearly-diverging probes from dragging their
           ever-longer waiter lists to the full horizon. *)
        let serve ~horizon rate =
          let src = Dtm_workload.Injection.source (spec rate) in
          Dtm_online.Open_system.run ~policy ~divergence_cap:400 metric src
            ~homes ~horizon
        in
        let stable rate =
          (serve ~horizon:1_000 rate).Dtm_online.Open_system.verdict
          = Dtm_online.Open_system.Bounded
        in
        let lo, hi =
          Dtm_online.Open_system.critical_rate ~iters:5 ~lo:rho_lo ~hi:rho_hi
            stable
        in
        let rho_star =
          if lo = hi && hi = rho_hi then Printf.sprintf ">= %.2f" rho_hi
          else if lo = hi then Printf.sprintf "< %.2f" rho_lo
          else Printf.sprintf "%.3f" (0.5 *. (lo +. hi))
        in
        let r = serve ~horizon:2_500 reference_rate in
        let module O = Dtm_online.Open_system in
        [
          Topology.to_string topo;
          Dtm_online.Policy.to_string policy;
          rho_star;
          O.verdict_to_string r.O.verdict;
          Table.cell_int r.O.peak_queue;
          Table.cell_int r.O.latency_p50;
          Table.cell_int r.O.latency_p99;
          Table.cell_int r.O.latency_p999;
          Table.cell_int r.O.forced_grants;
        ])
      cells
  in
  let per_topo = List.length policies in
  List.iteri
    (fun i row ->
      Table.add_row t row;
      if (i + 1) mod per_topo = 0 && i + 1 < List.length rows then
        Table.add_separator t)
    rows;
  {
    table = t;
    notes =
      [
        "Open-system stability (after arXiv 2208.07359): transactions";
        "arrive continually at rate rho (bursty Zipf injection, first";
        "seed), and a policy is stable while the backlog stays bounded.";
        "rho* is the bisected critical rate at which it destabilizes;";
        "queue and exact latency percentiles are read at rho = 0.30.";
        "Age-based policies (timestamp, greedy CM, window-greedy) sustain";
        "5-20x the injection rate of locality- or random-order grants,";
        "which starve old transactions: those wedge almost immediately";
        "and survive only on watchdog recoveries (forced column).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E17: executable STM — does simulated makespan predict wall-clock?  *)
(* ------------------------------------------------------------------ *)

let e17_stm ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("topology", Table.Left);
          ("policy (as CM)", Table.Left);
          ("corr(sim,wall)", Table.Right);
          ("abort rate", Table.Right);
          ("mean sim steps", Table.Right);
          ("mean wall ms", Table.Right);
          ("conserved", Table.Left);
        ]
  in
  let topologies =
    [
      Topology.Clique 16;
      Topology.Grid { rows = 4; cols = 4 };
      Topology.Line 16;
    ]
  in
  let policies =
    [
      Dtm_online.Policy.Timestamp { preemption = true };
      Dtm_online.Policy.Timestamp { preemption = false };
      Dtm_online.Policy.Window_greedy { window = 16; seed = 1 };
      Dtm_online.Policy.Backoff { seed = 1; limit = 8 };
    ]
  in
  (* Rank correlation needs several per-seed samples; pad short seed
     lists deterministically. *)
  let seeds =
    match seeds with
    | _ :: _ as l when List.length l >= 4 -> l
    | s :: _ -> [ s; s + 1; s + 2; s + 3 ]
    | [] -> [ 1; 2; 3; 4 ]
  in
  let count = 400 in
  (* Sequential on purpose: the STM runs spawn their own domain pools,
     and the numbers are wall-clock — keep the machine quiet. *)
  let rows =
    List.concat_map
      (fun topo ->
        let n = Topology.n topo in
        let metric = Topology.metric topo in
        let spec =
          {
            (* A contended burst: arrivals outpace service, so the sim
               makespan measures scheduling, not the injection tail. *)
            Dtm_workload.Injection.n;
            num_objects = n;
            k = 2;
            rate = 5.0;
            burst = 4;
            dist = Dtm_workload.Injection.Zipf_objects 0.8;
            seed = List.hd seeds;
          }
        in
        List.map
          (fun policy ->
            let row =
              Dtm_stm.Validate.policy_row ~domains:4 ~work_target_ns:20_000.0
                ~metric ~spec ~count ~seeds policy
            in
            let samples = row.Dtm_stm.Validate.samples in
            let mean f =
              Dtm_util.Stats.mean (Array.map f samples)
            in
            let conserved =
              Array.for_all
                (fun s -> s.Dtm_stm.Validate.commits = count)
                samples
            in
            [
              Topology.to_string topo;
              row.Dtm_stm.Validate.cm_name;
              Table.cell_float row.Dtm_stm.Validate.correlation;
              Table.cell_float row.Dtm_stm.Validate.mean_abort_rate;
              Table.cell_float
                (mean (fun s -> float_of_int s.Dtm_stm.Validate.sim_makespan));
              Table.cell_float
                (mean (fun s -> float_of_int s.Dtm_stm.Validate.wall_ns /. 1e6));
              (if conserved then "yes" else "NO");
            ])
          policies)
      topologies
  in
  let per_topo = List.length policies in
  List.iteri
    (fun i row ->
      Table.add_row t row;
      if (i + 1) mod per_topo = 0 && i + 1 < List.length rows then
        Table.add_separator t)
    rows;
  {
    table = t;
    notes =
      [
        "The loop closed: the same injected instances run through the";
        "discrete open-system simulator (makespan in steps) and through";
        "the live DSTM-style runtime on 4 domains (makespan in wall-clock";
        "ns), with each policy adapted as the contention manager.";
        "corr is the Spearman rank correlation across seeds - positive";
        "means the analysis's ordering of instances survives contact with";
        "real hardware.  Wall-clock numbers vary between machines and";
        "runs; 'conserved' (every transaction committed exactly once)";
        "must not.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E18: sharded open system — what does partitioning cost and buy?    *)
(* ------------------------------------------------------------------ *)

let e18_sharding ~seeds =
  let t =
    Table.create
      ~columns:
        [
          ("shards", Table.Right);
          ("policy", Table.Left);
          ("rho*", Table.Right);
          ("tput @0.40", Table.Right);
          ("verdict", Table.Left);
          ("peak q", Table.Right);
          ("p99", Table.Right);
          ("forced", Table.Right);
        ]
  in
  let shard_counts = [ 1; 2; 4; 8 ] in
  let policies =
    [
      Dtm_online.Policy.Timestamp { preemption = false };
      Dtm_online.Policy.Timestamp { preemption = true };
      Dtm_online.Policy.Window_greedy { window = 16; seed = 1 };
    ]
  in
  (* Like E16, the bisection multiplies the run count, so the sweep
     fixes the workload seed to the first requested seed. *)
  let seed = match seeds with s :: _ -> s | [] -> 1 in
  let topo = Topology.Grid { rows = 8; cols = 8 } in
  let n = Topology.n topo in
  let metric = Topology.metric topo in
  let reference_rate = 0.40 in
  let rho_lo = 0.05 and rho_hi = 1.60 in
  let cells =
    List.concat_map
      (fun shards -> List.map (fun policy -> (shards, policy)) policies)
      shard_counts
  in
  let rows =
    Dtm_util.Pool.run
      (fun (shards, policy) ->
        let spec rate =
          {
            Dtm_workload.Injection.n;
            num_objects = 2 * n;
            k = 2;
            rate;
            burst = 4;
            dist = Dtm_workload.Injection.Zipf_objects 1.0;
            seed;
          }
        in
        let homes = Dtm_workload.Injection.homes (spec reference_rate) in
        let serve ~horizon rate =
          Dtm_online.Sharded.run ~policy ~divergence_cap:400 ~shards metric
            (Dtm_workload.Injection.source_factory (spec rate))
            ~homes ~horizon
        in
        let stable rate =
          (serve ~horizon:1_000 rate).Dtm_online.Open_system.verdict
          = Dtm_online.Open_system.Bounded
        in
        let lo, hi =
          Dtm_online.Open_system.critical_rate ~iters:5 ~lo:rho_lo ~hi:rho_hi
            stable
        in
        let rho_star =
          if lo = hi && hi = rho_hi then Printf.sprintf ">= %.2f" rho_hi
          else if lo = hi then Printf.sprintf "< %.2f" rho_lo
          else Printf.sprintf "%.3f" (0.5 *. (lo +. hi))
        in
        let r = serve ~horizon:2_500 reference_rate in
        let module O = Dtm_online.Open_system in
        let tput =
          if r.O.horizon = 0 then 0.0
          else float_of_int r.O.committed /. float_of_int r.O.horizon
        in
        [
          string_of_int shards;
          Dtm_online.Policy.to_string policy;
          rho_star;
          Table.cell_float tput;
          O.verdict_to_string r.O.verdict;
          Table.cell_int r.O.peak_queue;
          Table.cell_int r.O.latency_p99;
          Table.cell_int r.O.forced_grants;
        ])
      cells
  in
  let per_count = List.length policies in
  List.iteri
    (fun i row ->
      Table.add_row t row;
      if (i + 1) mod per_count = 0 && i + 1 < List.length rows then
        Table.add_separator t)
    rows;
  {
    table = t;
    notes =
      [
        "The open system of E16, partitioned across S shards that";
        "advance in bulk-synchronous rounds (8x8 grid, bursty Zipf";
        "injection, first seed).  S = 1 is the unsharded engine; larger";
        "S exchanges cross-shard object grants through the round-based";
        "message protocol, so every remote handoff costs up to two";
        "round-lengths of latency.  rho* is the bisected critical rate;";
        "throughput (committed per step) and queue/latency are read at";
        "rho = 0.40.  For age-based policies the handoff tax shows up as";
        "latency, not capacity: rho* stays flat while p99 and the peak";
        "queue stretch with S.  Window-greedy inverts: its global window";
        "wedges the unsharded engine below rho = 0.40, and partitioning";
        "breaks the wedge (bounded again at S >= 4).  The simulated";
        "committed-per-step cost is what sharding pays for wall-clock";
        "parallelism - the online/steady_state_1m_s4 bench kernel";
        "measures the other side of that trade on real domains.";
      ];
  }
