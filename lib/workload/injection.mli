(** Seeded adversarial injection generators for the open-system engine
    (the continual-arrival setting of {i Stable Scheduling in
    Transactional Memory}, arXiv 2208.07359).

    A spec describes a Poisson-ish arrival process shaped by a token
    bucket: the system earns [rate] transactions worth of credit per
    step, and whenever at least [burst] credit has accrued the whole
    integer part arrives at once.  [burst = 1] is a smooth trickle at
    rate rho; larger bursts clump arrivals into adversarial batches at
    the same long-run rate.  Object choice is uniform, Zipf-skewed, or
    hot-spot concentrated.

    Everything is driven by one [Prng] seeded from [spec.seed], so two
    sources built from equal specs replay identically — the property
    layer in [test/test_stability.ml] checks this. *)

type obj_dist =
  | Uniform_objects
  | Zipf_objects of float  (** exponent >= 0; id 0 hottest *)
  | Hot_objects of float
      (** each object draw hits object 0 with this probability, else
          uniform *)

type spec = {
  n : int;  (** nodes; the issuing node is uniform *)
  num_objects : int;
  k : int;  (** distinct objects per transaction *)
  rate : float;  (** rho: expected transactions per step, > 0 *)
  burst : int;  (** token-bucket release threshold, >= 1 *)
  dist : obj_dist;
  seed : int;
}

val source : ?limit:int -> spec -> Dtm_online.Stream.source
(** A fresh pull-based source for the spec; [limit] caps the total
    number of transactions (default unbounded).  Arrivals are
    non-decreasing, starting at step 1.  Raises [Invalid_argument] on a
    malformed spec. *)

val source_factory : ?limit:int -> spec -> unit -> Dtm_online.Stream.source
(** [source_factory ?limit spec] packages {!source} for engines that
    need several identical replays of one stream — each call of the
    returned thunk is a fresh source with its own generator state, so
    the per-shard replays of [Dtm_online.Sharded] draw identically.
    Validates the spec once, eagerly. *)

val homes : spec -> int array
(** Initial object placement: uniform per object, drawn from a
    seed-derived generator independent of the arrival sequence. *)

val home_of : spec -> int -> int
(** Stateless O(1) placement for streamed instances: the home of each
    object is a hash of [(spec.seed, object)], so million-object
    universes never materialize a placement array
    ([Array.init m (home_of spec)] recovers one when an engine needs
    it).  Deterministic in the spec but {e not} equal to {!homes},
    which stays byte-stable for the closed-system experiments.  Raises
    [Invalid_argument] out of range. *)

val dist_to_string : obj_dist -> string

val describe : spec -> string
(** One-line summary for tables, e.g.
    ["rate 0.300, burst 4, zipf(1.10), k=2, m=64"]. *)
