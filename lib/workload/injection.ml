module Prng = Dtm_util.Prng
module Stream = Dtm_online.Stream

type obj_dist = Uniform_objects | Zipf_objects of float | Hot_objects of float

type spec = {
  n : int;
  num_objects : int;
  k : int;
  rate : float;
  burst : int;
  dist : obj_dist;
  seed : int;
}

let validate spec =
  if spec.n < 1 then invalid_arg "Injection: n < 1";
  if spec.num_objects < 1 then invalid_arg "Injection: num_objects < 1";
  if spec.k < 1 || spec.k > spec.num_objects then invalid_arg "Injection: bad k";
  if not (spec.rate > 0.0) then invalid_arg "Injection: rate <= 0";
  if spec.burst < 1 then invalid_arg "Injection: burst < 1";
  match spec.dist with
  | Zipf_objects e when e < 0.0 -> invalid_arg "Injection: negative exponent"
  | Hot_objects p when p < 0.0 || p > 1.0 ->
    invalid_arg "Injection: hot probability out of range"
  | _ -> ()

let dist_to_string = function
  | Uniform_objects -> "uniform"
  | Zipf_objects e -> Printf.sprintf "zipf(%.2f)" e
  | Hot_objects p -> Printf.sprintf "hot(%.2f)" p

let describe spec =
  Printf.sprintf "rate %.3f, burst %d, %s, k=%d, m=%d" spec.rate spec.burst
    (dist_to_string spec.dist) spec.k spec.num_objects

let source ?limit spec =
  validate spec;
  let rng = Prng.create ~seed:spec.seed in
  (* Cumulative weights for inverse-transform Zipf sampling, built once. *)
  let zipf_cum =
    match spec.dist with
    | Zipf_objects e ->
      let cum = Array.make spec.num_objects 0.0 in
      let total = ref 0.0 in
      for o = 0 to spec.num_objects - 1 do
        total := !total +. (1.0 /. (float_of_int (o + 1) ** e));
        cum.(o) <- !total
      done;
      Some cum
    | Uniform_objects | Hot_objects _ -> None
  in
  let draw_object () =
    match spec.dist with
    | Uniform_objects -> Prng.int rng spec.num_objects
    | Hot_objects p ->
      if Prng.float rng 1.0 < p then 0 else Prng.int rng spec.num_objects
    | Zipf_objects _ ->
      let cum = Option.get zipf_cum in
      let x = Prng.float rng cum.(spec.num_objects - 1) in
      let lo = ref 0 and hi = ref (spec.num_objects - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cum.(mid) >= x then hi := mid else lo := mid + 1
      done;
      !lo
  in
  (* k distinct objects by rejection (k is small), sorted for stable
     downstream iteration order.  The buffer is reused across pulls and
     membership is a linear scan over at most k ints, so a draw
     allocates nothing but the emitted list; the rejection order is
     identical to the original list-based loop, so seeded workloads
     replay byte-for-byte. *)
  let draw_buf = Array.make spec.k 0 in
  let draw_objects () =
    let filled = ref 0 in
    while !filled < spec.k do
      let o = draw_object () in
      let dup = ref false in
      for i = 0 to !filled - 1 do
        if draw_buf.(i) = o then dup := true
      done;
      if not !dup then begin
        draw_buf.(!filled) <- o;
        incr filled
      end
    done;
    (* Ascending insertion sort: k is tiny (2-3), the entries are
       distinct, and this skips [Array.sort]'s per-call overhead on the
       engine's hottest allocation path; the sorted result is identical. *)
    for i = 1 to spec.k - 1 do
      let x = draw_buf.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && draw_buf.(!j) > x do
        draw_buf.(!j + 1) <- draw_buf.(!j);
        decr j
      done;
      draw_buf.(!j + 1) <- x
    done;
    Array.fold_right (fun o acc -> o :: acc) draw_buf []
  in
  let emitted = ref 0 in
  let step = ref 0 in
  let credit = ref 0.0 in
  let due = ref 0 in
  let exhausted () =
    match limit with Some l -> !emitted >= l | None -> false
  in
  let pull () =
    if exhausted () then None
    else begin
      (* Token bucket: every step earns [rate] credit; once at least
         [burst] has accrued the whole integer part is released as a
         batch arriving that step.  burst = 1 is a smooth trickle;
         larger bursts clump arrivals adversarially. *)
      while !due = 0 do
        incr step;
        credit := !credit +. spec.rate;
        if !credit >= float_of_int spec.burst then begin
          let m = int_of_float !credit in
          due := m;
          credit := !credit -. float_of_int m
        end
      done;
      decr due;
      incr emitted;
      let node = Prng.int rng spec.n in
      Some { Stream.node; objects = draw_objects (); arrival = !step }
    end
  in
  Stream.make_source ~n:spec.n ~num_objects:spec.num_objects pull

let source_factory ?limit spec =
  validate spec;
  fun () -> source ?limit spec

let homes spec =
  validate spec;
  (* A seed-derived but independent draw, so the object placement does
     not shift when the arrival sequence is consumed differently. *)
  let rng = Prng.create ~seed:(spec.seed lxor 0x686f6d65) in
  Array.init spec.num_objects (fun _ -> Prng.int rng spec.n)

(* Stateless placement for streamed instances: [homes] threads one
   generator through the objects in order, which forces the whole array
   into existence; a random-access hash gives each object its home in
   O(1) with no array at all.  The two placements are both uniform but
   NOT equal — [homes] stays byte-stable for the closed-system
   experiments, [home_of] serves the large-n paths born in this PR.
   Xorshift-multiply finalizer (splitmix-style, constants trimmed to
   OCaml's 63-bit ints). *)
let home_of spec =
  validate spec;
  let base = spec.seed lxor 0x686f6d65 in
  let n = spec.n in
  fun o ->
    if o < 0 || o >= spec.num_objects then
      invalid_arg "Injection.home_of: object out of range";
    let z = base + (o * 0x9e3779b9) in
    let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
    let z = (z lxor (z lsr 27)) * 0x2545F4914F6CDD1D in
    let z = (z lxor (z lsr 31)) land max_int in
    z mod n
