(** Transactional objects: one [Atomic] word per object holding a
    DSTM-style locator.

    A locator freezes the object's state relative to its owning
    transaction: if the owner committed, the logical value is
    [new_value] at version [old_version + 1]; in every other case
    ([Active] or [Aborted]) it is [old_value] at [old_version].
    Opening an object for writing replaces the whole locator by CAS
    with a fresh record pointing at the opener's descriptor — so a
    transaction's writes to many objects all take effect at the single
    commit CAS on its descriptor, and aborted owners need no cleanup
    pass (their locators simply resolve to the old value).

    Locator records are immutable and freshly allocated per open;
    together with fresh descriptors per attempt this rules out ABA on
    the object word.  [Atomic.get]/[compare_and_set] are sequentially
    consistent in OCaml 5, so a reader that observes a [Committed]
    owner also observes the [new_value] written before that commit. *)

type locator = {
  owner : Desc.t;
  old_version : int;  (** version before [owner]'s write *)
  old_value : int;
  new_value : int;
}

type t = { id : int; loc : locator Atomic.t }

val create : id:int -> int -> t
(** [create ~id v] — a fresh object with committed value [v] at
    version 0. *)

val stable : locator -> int * int
(** [(version, value)] the locator resolves to right now, per the
    owner's current status. *)

val read : t -> int * int
(** Invisible read: the current stable [(version, value)].  Leaves no
    trace in shared memory — callers must revalidate at commit. *)

val value : t -> int
val version : t -> int
