module Pool = Dtm_util.Pool

type txn_spec = {
  node : int;
  reads : int array;
  writes : int array;
  arrival : int;
  work : int;
}

type commit_record = {
  tid : int;
  seq : int;
  read_set : (int * int) array;
  write_set : (int * int) array;
}

type report = {
  domains : int;
  starts : int;
  commits : int;
  aborts : int;
  wall_ns : int;
  throughput : float;
  abort_rate : float;
  total_increments : int;
}

exception Abort_now

(* One [Wait 1] from the contention manager costs this many spin
   iterations — roughly tens of nanoseconds, so exponential backoff
   spans a useful range before the manager escalates. *)
let wait_unit = 64

(* Acquire [tv] for writing on behalf of [desc]; returns the stable
   version observed at acquisition (our write creates version + 1).
   Obstruction-free: a conflicting Active owner is arbitrated by the
   contention manager; everything else is a CAS retry. *)
let open_write (cm : Cm.t) (desc : Desc.t) (tv : Tvar.t) =
  let attempt = ref 0 in
  let rec loop () =
    if not (Desc.is_active desc) then raise Abort_now;
    let l = Atomic.get tv.Tvar.loc in
    if l.Tvar.owner == desc then l.Tvar.old_version
    else
      match Desc.status l.Tvar.owner with
      | Desc.Active -> (
        match cm.Cm.resolve ~self:desc ~other:l.Tvar.owner ~attempt:!attempt with
        | Cm.Abort_other ->
          ignore (Desc.try_abort l.Tvar.owner);
          incr attempt;
          loop ()
        | Cm.Abort_self ->
          ignore (Desc.try_abort desc);
          raise Abort_now
        | Cm.Wait units ->
          Calibrate.spin (units * wait_unit);
          incr attempt;
          loop ())
      | Desc.Committed | Desc.Aborted ->
        let ver, value = Tvar.stable l in
        let nl =
          {
            Tvar.owner = desc;
            old_version = ver;
            old_value = value;
            new_value = value + 1;
          }
        in
        if Atomic.compare_and_set tv.Tvar.loc l nl then ver else loop ()
  in
  loop ()

(* A read (tv, v) is still valid iff tv's locator is ours at the same
   version, or foreign-but-resolved and still resolving to v.  A
   foreign *Active* owner fails the read even though the stable value
   has not changed yet: acquisition precedes validation inside every
   transaction, so treating acquisition as invalidation closes the
   window between our validation and our commit CAS (see runtime.mli). *)
let reads_valid (desc : Desc.t) reads =
  Array.for_all
    (fun ((tv : Tvar.t), v) ->
      let l = Atomic.get tv.Tvar.loc in
      if l.Tvar.owner == desc then l.Tvar.old_version = v
      else
        match Desc.status l.Tvar.owner with
        | Desc.Active -> false
        | Desc.Committed | Desc.Aborted -> fst (Tvar.stable l) = v)
    reads

type shard_acc = {
  mutable s_starts : int;
  mutable s_commits : int;
  mutable s_aborts : int;
  mutable s_records : commit_record list;
}

let run_txn ~cm ~(tvars : Tvar.t array) ~commit_seq ~record ~tid spec acc =
  let committed = ref false in
  while not !committed do
    acc.s_starts <- acc.s_starts + 1;
    let desc = Desc.make ~tid ~birth:spec.arrival in
    match
      let reads =
        Array.map
          (fun o ->
            let tv = tvars.(o) in
            (tv, fst (Tvar.read tv)))
          spec.reads
      in
      Calibrate.spin spec.work;
      let writes =
        Array.map
          (fun o ->
            let tv = tvars.(o) in
            (tv, open_write cm desc tv))
          spec.writes
      in
      if not (reads_valid desc reads) then begin
        ignore (Desc.try_abort desc);
        raise Abort_now
      end;
      if not (Desc.try_commit desc) then raise Abort_now;
      (reads, writes)
    with
    | reads, writes ->
      committed := true;
      acc.s_commits <- acc.s_commits + 1;
      let seq = Atomic.fetch_and_add commit_seq 1 in
      if record then
        acc.s_records <-
          {
            tid;
            seq;
            read_set = Array.map (fun ((tv : Tvar.t), v) -> (tv.Tvar.id, v)) reads;
            write_set =
              Array.map (fun ((tv : Tvar.t), v) -> (tv.Tvar.id, v + 1)) writes;
          }
          :: acc.s_records
    | exception Abort_now -> acc.s_aborts <- acc.s_aborts + 1
  done

let check_spec ~num_objects i spec =
  let check_obj o =
    if o < 0 || o >= num_objects then
      invalid_arg
        (Printf.sprintf "Runtime.run: txn %d: object %d out of range" i o)
  in
  Array.iter check_obj spec.reads;
  Array.iter check_obj spec.writes;
  (* Duplicate writes would double-count in write_set and in the
     conservation ledger; write sets are tiny, so O(k^2) is fine. *)
  Array.iteri
    (fun j o ->
      for j' = 0 to j - 1 do
        if spec.writes.(j') = o then
          invalid_arg
            (Printf.sprintf "Runtime.run: txn %d: duplicate write object %d" i o)
      done)
    spec.writes;
  if spec.arrival < 1 then invalid_arg "Runtime.run: arrival < 1";
  if spec.work < 0 then invalid_arg "Runtime.run: negative work"

let run ?(record = false)
    ?(cm = Cm.of_policy (Dtm_online.Policy.Timestamp { preemption = true }))
    ~domains ~num_objects specs =
  if domains < 1 then invalid_arg "Runtime.run: domains < 1";
  if num_objects < 1 then invalid_arg "Runtime.run: num_objects < 1";
  Array.iteri (check_spec ~num_objects) specs;
  (* Calibrate before the clock starts — the first ns_per_unit call
     burns a few milliseconds. *)
  ignore (Calibrate.ns_per_unit ());
  let tvars = Array.init num_objects (fun id -> Tvar.create ~id 0) in
  let commit_seq = Atomic.make 0 in
  let total = Array.length specs in
  let run_shard d =
    let acc = { s_starts = 0; s_commits = 0; s_aborts = 0; s_records = [] } in
    let i = ref d in
    while !i < total do
      run_txn ~cm ~tvars ~commit_seq ~record ~tid:!i specs.(!i) acc;
      i := !i + domains
    done;
    acc
  in
  let t0 = Unix.gettimeofday () in
  let accs =
    Pool.with_pool ~jobs:domains (fun pool ->
        Pool.map pool run_shard (List.init domains (fun d -> d)))
  in
  let wall_ns =
    max 1 (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  in
  let starts = List.fold_left (fun a s -> a + s.s_starts) 0 accs in
  let commits = List.fold_left (fun a s -> a + s.s_commits) 0 accs in
  let aborts = List.fold_left (fun a s -> a + s.s_aborts) 0 accs in
  let records =
    if not record then [||]
    else begin
      let arr =
        Array.of_list (List.concat_map (fun s -> s.s_records) accs)
      in
      Array.sort (fun a b -> compare a.seq b.seq) arr;
      arr
    end
  in
  let total_increments =
    Array.fold_left (fun a tv -> a + Tvar.value tv) 0 tvars
  in
  let report =
    {
      domains;
      starts;
      commits;
      aborts;
      wall_ns;
      throughput = float_of_int commits /. (float_of_int wall_ns /. 1e9);
      abort_rate =
        (if starts = 0 then 0.0
         else float_of_int aborts /. float_of_int starts);
      total_increments;
    }
  in
  (report, records)

let of_injection ?(work_scale = 1) ~metric ~spec ~count () =
  if count < 0 then invalid_arg "Runtime.of_injection: negative count";
  if work_scale < 0 then invalid_arg "Runtime.of_injection: negative scale";
  let module I = Dtm_workload.Injection in
  let module S = Dtm_online.Stream in
  let homes = I.homes spec in
  let src = I.source ~limit:count spec in
  let out = ref [] in
  let k = ref 0 in
  let continue = ref true in
  while !continue && !k < count do
    match S.pull src with
    | None -> continue := false
    | Some txn ->
      incr k;
      let writes = Array.of_list txn.S.objects in
      let cost =
        Array.fold_left
          (fun acc o ->
            max acc (Dtm_graph.Metric.dist metric txn.S.node homes.(o)))
          1 writes
      in
      out :=
        {
          node = txn.S.node;
          reads = [||];
          writes;
          arrival = txn.S.arrival;
          work = work_scale * cost;
        }
        :: !out
  done;
  Array.of_list (List.rev !out)
