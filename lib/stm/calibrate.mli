(** Calibrated busy-work, so a transaction's simulated execution time
    (in abstract work units) maps to a comparable wall-clock cost on
    this machine.

    [spin] is a data-dependent integer loop the compiler cannot elide;
    [ns_per_unit] measures its per-iteration cost once (median of
    several rounds, cached), and [units_for] converts a nanosecond
    target into loop iterations. *)

val spin : int -> unit
(** [spin k] burns roughly [k] loop iterations of integer work.
    [k <= 0] is a no-op.  Safe to call from any domain. *)

val ns_per_unit : unit -> float
(** Measured cost of one [spin] iteration in nanoseconds (cached after
    the first call; first call takes a few milliseconds).  Values on
    contemporary hardware are typically 0.3–2 ns. *)

val units_for : target_ns:float -> int
(** Loop iterations whose duration approximates [target_ns] (>= 1). *)
