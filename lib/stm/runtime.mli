(** The executable STM runtime: DSTM-style obstruction-free software
    transactional memory over OCaml 5 domains, with the repo's
    scheduling policies plugged in as contention managers.

    Each transaction: invisibly reads its read-set (recording
    [(object, version)]), burns its calibrated busy-work, opens every
    write-set object with an open-for-write CAS (consulting the
    {!Cm.t} on conflict), validates the read-set, and commits by a
    single CAS on its descriptor's status.  Aborted attempts retry
    until the transaction commits — the workload is closed, so
    [commits] always equals the number of transactions and
    [starts = commits + aborts].

    Validation fails a read [(o, v)] unless [o]'s current locator
    either (a) belongs to this transaction with [old_version = v], or
    (b) has a non-[Active] owner and still resolves to version [v].
    Failing on a merely {e acquired} (not yet committed) foreign
    owner is what makes validate-then-commit-CAS safe: two
    transactions that each read an object the other writes cannot
    both pass validation (each acquisition precedes its own
    validation, so one of them must observe the other's ownership).

    Every committed write increments its object by exactly 1, so
    [total_increments] (the sum of final object values) must equal
    the summed write-set sizes of all commits — the zero-lost-commit
    conservation check. *)

type txn_spec = {
  node : int;  (** issuing node (bookkeeping only) *)
  reads : int array;  (** object ids read but not written *)
  writes : int array;  (** object ids opened for write (incremented) *)
  arrival : int;  (** birth for contention-manager priority, >= 1 *)
  work : int;  (** {!Calibrate.spin} units between read and write *)
}

type commit_record = {
  tid : int;
  seq : int;  (** global commit order, dense from 0 *)
  read_set : (int * int) array;  (** (object, version observed) *)
  write_set : (int * int) array;  (** (object, version created) *)
}

type report = {
  domains : int;
  starts : int;  (** attempts = commits + aborts *)
  commits : int;
  aborts : int;
  wall_ns : int;
  throughput : float;  (** commits per second of wall-clock *)
  abort_rate : float;  (** aborts / starts; 0 when nothing started *)
  total_increments : int;
      (** sum of final object values (all objects start at 0) *)
}

val run :
  ?record:bool ->
  ?cm:Cm.t ->
  domains:int ->
  num_objects:int ->
  txn_spec array ->
  report * commit_record array
(** [run ~domains ~num_objects specs] executes the workload on a
    {!Dtm_util.Pool} of [domains] domains (transaction [i] runs on
    shard [i mod domains]; each shard executes its transactions in
    index order, mirroring one-live-transaction-per-node issue order).
    Defaults: [record = false] (empty record array), [cm] = Greedy.
    With [record = true] the records come back sorted by [seq].
    Raises [Invalid_argument] on [domains < 1], an object id out of
    range, or [arrival < 1]. *)

val of_injection :
  ?work_scale:int ->
  metric:Dtm_graph.Metric.t ->
  spec:Dtm_workload.Injection.spec ->
  count:int ->
  unit ->
  txn_spec array
(** Materialize [count] transactions from the injection source (same
    seeded draw the open-system engine replays) as all-write
    transactions.  A transaction's [work] is
    [work_scale * max 1 (max over its objects of
    dist(node, home(object)))] — the same communication-cost proxy the
    simulator charges, so simulated makespan and wall-clock are
    comparable.  [work_scale] defaults to 1; scale it with
    {!Calibrate.units_for} to hit a wall-clock target per unit. *)
