(** The closing of the loop: do simulated makespans predict wall-clock?

    For each policy, the harness replays the {e same} seeded injection
    instances twice — once through the discrete open-system simulator
    ({!Dtm_online.Open_system}, makespan in steps) and once through the
    live STM runtime ({!Runtime}, makespan in nanoseconds) — and
    reports the Spearman rank correlation between the two across
    seeds.  A policy whose simulated ordering of instances matches its
    measured ordering is a policy whose analysis transfers to the
    metal. *)

type sample = {
  seed : int;
  sim_makespan : int;  (** simulator steps until drained *)
  wall_ns : int;
  commits : int;
  aborts : int;
}

type row = {
  policy : Dtm_online.Policy.t;
  cm_name : string;
  samples : sample array;
  correlation : float;
      (** Spearman of sim makespan vs wall-clock over the seeds *)
  mean_abort_rate : float;
}

val sim_makespan :
  ?policy:Dtm_online.Policy.t ->
  metric:Dtm_graph.Metric.t ->
  spec:Dtm_workload.Injection.spec ->
  count:int ->
  unit ->
  int
(** Steps the open-system engine needs to drain [count] injected
    transactions (its [report.horizon] on a drained run). *)

val policy_row :
  ?domains:int ->
  ?work_target_ns:float ->
  metric:Dtm_graph.Metric.t ->
  spec:Dtm_workload.Injection.spec ->
  count:int ->
  seeds:int list ->
  Dtm_online.Policy.t ->
  row
(** One correlation row: per seed in [seeds], rebuild the spec with
    that seed, simulate, then execute on [domains] (default 4) with
    each work unit calibrated to [work_target_ns] (default 2000 ns).
    Needs >= 2 seeds for a defined correlation. *)

type speedup_point = {
  p_domains : int;
  p_wall_ns : int;
  p_throughput : float;
  p_abort_rate : float;
  p_speedup : float;  (** first listed domain count's wall / this wall *)
}

val speedup_curve :
  ?work_target_ns:float ->
  metric:Dtm_graph.Metric.t ->
  spec:Dtm_workload.Injection.spec ->
  count:int ->
  domains_list:int list ->
  Dtm_online.Policy.t ->
  speedup_point list
(** Execute one fixed workload at each domain count (in list order);
    speedups are relative to the first entry, so pass [1] first to get
    the classic scaling curve. *)

val log_serializable : Runtime.commit_record array -> bool
(** Structural conflict-serializability of a recorded run: every
    object's committed write versions form a gap-free chain [1..k],
    and the version conflict graph (writer(v) before writer(v+1) and
    readers(v); readers(v) before writer(v+1)) is acyclic.
    [test/test_stm.ml] cross-checks this against the DTM115 trace
    lint. *)

val conserved : Runtime.report -> Runtime.txn_spec array -> bool
(** The zero-lost-commit verdict: every transaction committed exactly
    once ([commits] = workload size, [starts = commits + aborts]) and
    the summed final object values equal the summed write-set sizes —
    no increment was lost or duplicated by the commit protocol. *)
