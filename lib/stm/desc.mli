(** Transaction descriptors: the single word of shared state whose CAS
    decides a transaction's fate (DSTM, Herlihy et al., PODC 2003).

    Every attempt of a transaction allocates a fresh descriptor whose
    [status] starts [Active].  Exactly one CAS ever succeeds on it —
    either the owner flips it to [Committed] at its commit point, or a
    conflicting transaction flips it to [Aborted] — so all object
    locators pointing at the descriptor change logical value
    atomically.  Descriptors are never reused; freshly-allocated
    immutable locators plus fresh descriptors rule out ABA on the
    object words. *)

type status = Active | Committed | Aborted

type t = {
  tid : int;  (** workload index; stable across retries of one txn *)
  birth : int;
      (** arrival step of the transaction — the age every timestamp-
          based contention manager arbitrates on.  Stable across
          retries, so an unlucky transaction only gets older (the
          Greedy CM's no-starvation argument needs exactly this). *)
  status : status Atomic.t;
}

val make : tid:int -> birth:int -> t
(** A fresh [Active] descriptor. *)

val committed_root : unit -> t
(** A pre-committed descriptor ([tid = -1]) for the initial locator of
    a transactional object. *)

val status : t -> status
(** [Atomic.get] — a full acquire fence, so a [Committed] answer also
    publishes every plain write the owner made before its commit CAS. *)

val is_active : t -> bool

val try_commit : t -> bool
(** CAS [Active -> Committed]; false iff a conflicting transaction
    already aborted this descriptor. *)

val try_abort : t -> bool
(** CAS [Active -> Aborted]; false iff already resolved.  Callable from
    any domain — this is the obstruction-free "abort the other guy"
    primitive. *)

val status_to_string : status -> string
