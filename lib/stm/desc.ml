type status = Active | Committed | Aborted

type t = { tid : int; birth : int; status : status Atomic.t }

let make ~tid ~birth = { tid; birth; status = Atomic.make Active }

let committed_root () =
  { tid = -1; birth = 0; status = Atomic.make Committed }

let status t = Atomic.get t.status
let is_active t = Atomic.get t.status = Active
let try_commit t = Atomic.compare_and_set t.status Active Committed
let try_abort t = Atomic.compare_and_set t.status Active Aborted

let status_to_string = function
  | Active -> "active"
  | Committed -> "committed"
  | Aborted -> "aborted"
