module I = Dtm_workload.Injection
module Open_system = Dtm_online.Open_system
module Stats = Dtm_util.Stats

type sample = {
  seed : int;
  sim_makespan : int;
  wall_ns : int;
  commits : int;
  aborts : int;
}

type row = {
  policy : Dtm_online.Policy.t;
  cm_name : string;
  samples : sample array;
  correlation : float;
  mean_abort_rate : float;
}

let sim_makespan ?policy ~metric ~spec ~count () =
  let src = I.source ~limit:count spec in
  let homes = I.homes spec in
  (* Generous horizon: a drained run stops at its makespan anyway, and
     the frontier-only engine iterates empty steps cheaply. *)
  let horizon = 1000 + (64 * count) in
  let r = Open_system.run ?policy metric src ~homes ~horizon in
  r.Open_system.horizon

let policy_row ?(domains = 4) ?(work_target_ns = 2000.0) ~metric ~spec ~count
    ~seeds policy =
  let work_scale = Calibrate.units_for ~target_ns:work_target_ns in
  let cm = Cm.of_policy policy in
  let samples =
    List.map
      (fun seed ->
        let spec = { spec with I.seed } in
        let sim = sim_makespan ~policy ~metric ~spec ~count () in
        let workload =
          Runtime.of_injection ~work_scale ~metric ~spec ~count ()
        in
        let rep, _ =
          Runtime.run ~cm ~domains ~num_objects:spec.I.num_objects workload
        in
        {
          seed;
          sim_makespan = sim;
          wall_ns = rep.Runtime.wall_ns;
          commits = rep.Runtime.commits;
          aborts = rep.Runtime.aborts;
        })
      seeds
    |> Array.of_list
  in
  let sims = Array.map (fun s -> float_of_int s.sim_makespan) samples in
  let walls = Array.map (fun s -> float_of_int s.wall_ns) samples in
  let correlation =
    if Array.length samples >= 2 then Stats.spearman sims walls else 0.0
  in
  let mean_abort_rate =
    if Array.length samples = 0 then 0.0
    else
      let r =
        Array.fold_left
          (fun acc s ->
            acc
            +.
            let st = s.commits + s.aborts in
            if st = 0 then 0.0 else float_of_int s.aborts /. float_of_int st)
          0.0 samples
      in
      r /. float_of_int (Array.length samples)
  in
  { policy; cm_name = cm.Cm.name; samples; correlation; mean_abort_rate }

type speedup_point = {
  p_domains : int;
  p_wall_ns : int;
  p_throughput : float;
  p_abort_rate : float;
  p_speedup : float;
}

let speedup_curve ?(work_target_ns = 2000.0) ~metric ~spec ~count ~domains_list
    policy =
  if domains_list = [] then invalid_arg "Validate.speedup_curve: empty list";
  let work_scale = Calibrate.units_for ~target_ns:work_target_ns in
  let cm = Cm.of_policy policy in
  let workload = Runtime.of_injection ~work_scale ~metric ~spec ~count () in
  let base = ref 0 in
  List.map
    (fun domains ->
      let rep, _ =
        Runtime.run ~cm ~domains ~num_objects:spec.I.num_objects workload
      in
      if !base = 0 then base := rep.Runtime.wall_ns;
      {
        p_domains = domains;
        p_wall_ns = rep.Runtime.wall_ns;
        p_throughput = rep.Runtime.throughput;
        p_abort_rate = rep.Runtime.abort_rate;
        p_speedup = float_of_int !base /. float_of_int rep.Runtime.wall_ns;
      })
    domains_list

(* Structural serializability of a commit log: every object's committed
   write versions form a gap-free chain 1..k (the open-for-write CAS
   hands versions out in order), and the version conflict graph —
   writer(v) -> writer(v+1), writer(v) -> readers(v),
   readers(v) -> writer(v+1) — is acyclic, which is exactly
   "equivalent to some serial order" once writes are chains. *)
let log_serializable (records : Runtime.commit_record array) =
  let n = Array.length records in
  let writer = Hashtbl.create 64 (* (obj, version) -> record index *) in
  let readers = Hashtbl.create 64 (* (obj, version) -> index list *) in
  let per_object = Hashtbl.create 64 (* obj -> version list *) in
  let duplicate = ref false in
  Array.iteri
    (fun i (r : Runtime.commit_record) ->
      Array.iter
        (fun (o, v) ->
          if Hashtbl.mem writer (o, v) then duplicate := true;
          Hashtbl.replace writer (o, v) i;
          Hashtbl.replace per_object o
            (v :: Option.value ~default:[] (Hashtbl.find_opt per_object o)))
        r.Runtime.write_set;
      Array.iter
        (fun (o, v) ->
          Hashtbl.replace readers (o, v)
            (i :: Option.value ~default:[] (Hashtbl.find_opt readers (o, v))))
        r.Runtime.read_set)
    records;
  (not !duplicate)
  && Hashtbl.fold
       (fun _ versions ok ->
         ok
         &&
         let sorted = List.sort compare versions in
         List.for_all2
           (fun v i -> v = i)
           sorted
           (List.init (List.length sorted) (fun i -> i + 1)))
       per_object true
  &&
  let adj = Array.make (max 1 n) [] and indeg = Array.make (max 1 n) 0 in
  let edge a b =
    if a <> b then begin
      adj.(a) <- b :: adj.(a);
      indeg.(b) <- indeg.(b) + 1
    end
  in
  Hashtbl.iter
    (fun (o, v) w ->
      (match Hashtbl.find_opt writer (o, v + 1) with
      | Some w' -> edge w w'
      | None -> ());
      List.iter
        (fun r ->
          edge w r;
          match Hashtbl.find_opt writer (o, v + 1) with
          | Some w' -> edge r w'
          | None -> ())
        (Option.value ~default:[] (Hashtbl.find_opt readers (o, v))))
    writer;
  (* Readers of a version with no committed writer (e.g. version 0)
     still precede the writer of the next version. *)
  Hashtbl.iter
    (fun (o, v) rs ->
      if not (Hashtbl.mem writer (o, v)) then
        match Hashtbl.find_opt writer (o, v + 1) with
        | Some w' -> List.iter (fun r -> edge r w') rs
        | None -> ())
    readers;
  let q = Queue.create () in
  Array.iteri (fun i d -> if d = 0 && i < n then Queue.add i q) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr seen;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      adj.(u)
  done;
  !seen = n

let conserved (rep : Runtime.report) specs =
  let writes =
    Array.fold_left (fun a s -> a + Array.length s.Runtime.writes) 0 specs
  in
  rep.Runtime.commits = Array.length specs
  && rep.Runtime.starts = rep.Runtime.commits + rep.Runtime.aborts
  && rep.Runtime.total_increments = writes
