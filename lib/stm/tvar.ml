type locator = {
  owner : Desc.t;
  old_version : int;
  old_value : int;
  new_value : int;
}

type t = { id : int; loc : locator Atomic.t }

(* The root locator's owner is pre-committed, so [stable] resolves it to
   (old_version + 1, new_value); seeding old_version with -1 makes the
   initial committed state version 0. *)
let create ~id value =
  {
    id;
    loc =
      Atomic.make
        {
          owner = Desc.committed_root ();
          old_version = -1;
          old_value = value;
          new_value = value;
        };
  }

let stable l =
  match Desc.status l.owner with
  | Desc.Committed -> (l.old_version + 1, l.new_value)
  | Desc.Active | Desc.Aborted -> (l.old_version, l.old_value)

let read t = stable (Atomic.get t.loc)
let value t = snd (read t)
let version t = fst (read t)
