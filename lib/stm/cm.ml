module Policy = Dtm_online.Policy

type decision = Abort_other | Abort_self | Wait of int

type t = {
  name : string;
  resolve : self:Desc.t -> other:Desc.t -> attempt:int -> decision;
}

let older (a : Desc.t) (b : Desc.t) =
  a.Desc.birth < b.Desc.birth
  || (a.Desc.birth = b.Desc.birth && a.Desc.tid < b.Desc.tid)

(* Greedy (Guerraoui-Herlihy-Pochon): age decides instantly.  The
   globally oldest live transaction is never on the losing side, so the
   system always makes progress. *)
let greedy ~self ~other ~attempt:_ =
  if older self other then Abort_other else Abort_self

let timestamp_preemptive = { name = "timestamp+preemption"; resolve = greedy }

(* Non-preemptive timestamp: honour the owner's "irrevocable grant" for
   a bounded number of increasingly long spins (mirroring the online
   engine, where a granted object cannot be stolen until commit), then
   fall back to age so the wait cannot become a deadlock. *)
let timestamp_patience = 24

let timestamp =
  let resolve ~self ~other ~attempt =
    if attempt < timestamp_patience then Wait (1 lsl min attempt 10)
    else if older self other then Abort_other
    else Abort_self
  in
  { name = "timestamp"; resolve }

(* Window-based greedy (Sharma-Busch, arXiv 1002.4182): earlier windows
   always win; within a window a seeded hash ranks the contenders.  The
   key is a total order over descriptors, so the minimum live
   transaction always wins its conflicts. *)
let window_greedy ~window ~seed =
  let key (d : Desc.t) =
    let w = Policy.window_index ~window ~arrival:(max 1 d.Desc.birth) in
    (w, Policy.window_priority ~seed ~window_id:w ~id:d.Desc.tid, d.Desc.tid)
  in
  let resolve ~self ~other ~attempt:_ =
    if key self < key other then Abort_other else Abort_self
  in
  { name = "window-greedy"; resolve }

(* Polite (Scherer-Scott): back off for a randomized, exponentially
   growing delay; after [limit] attempts lose patience and take the
   object.  Stateless draws de-synchronize symmetric contenders. *)
let backoff ~seed ~limit =
  if limit < 1 then invalid_arg "Cm.backoff: limit < 1";
  let resolve ~self:(s : Desc.t) ~other:_ ~attempt =
    if attempt >= limit then Abort_other
    else Wait (Policy.backoff_delay ~seed ~id:s.Desc.tid ~attempt ~limit)
  in
  { name = "randomized-backoff"; resolve }

(* Seeded coin on the unordered tid pair: both sides compute the same
   winner, and the verdict is stable across retries (descriptors keep
   their tid), so the loser only proceeds once the winner resolves. *)
let random_grant ~seed =
  let resolve ~self:(s : Desc.t) ~other:(o : Desc.t) ~attempt:_ =
    let lo = min s.Desc.tid o.Desc.tid and hi = max s.Desc.tid o.Desc.tid in
    let low_wins = Policy.window_priority ~seed ~window_id:lo ~id:hi land 1 = 0 in
    if (s.Desc.tid = lo) = low_wins then Abort_other else Abort_self
  in
  { name = "random"; resolve }

let of_policy = function
  | Policy.Timestamp { preemption = true } -> timestamp_preemptive
  | Policy.Timestamp { preemption = false } -> timestamp
  | Policy.Window_greedy { window; seed } -> window_greedy ~window ~seed
  | Policy.Backoff { seed; limit } -> backoff ~seed ~limit
  | Policy.Random_grant seed -> random_grant ~seed
  | Policy.Nearest ->
    (* Domains share one address space; "distance to the object" is
       meaningless, so locality-seeking degenerates to Greedy. *)
    { timestamp_preemptive with name = "nearest(greedy-fallback)" }
