(** Contention managers: the pluggable conflict arbiter of the DSTM
    design, adapting the repo's scheduling policies
    ({!Dtm_online.Policy}) into live abort/wait decisions.

    When transaction [self] finds object [o] owned by an [Active]
    transaction [other], the runtime asks the manager what to do.  The
    manager only advises — the runtime enacts the decision with the
    obstruction-free primitives ([Desc.try_abort] on [other] or on
    [self]'s own descriptor).  [attempt] counts how many times [self]
    has consulted the manager for this acquisition, so waiting
    managers can escalate.

    Managers must be safe to call concurrently from many domains; all
    adapters here are stateless (pure functions of the two descriptors
    and the attempt count), which also keeps arbitration symmetric —
    both sides of a conflict compute the same winner. *)

type decision =
  | Abort_other  (** kill the current owner and retry the CAS *)
  | Abort_self  (** abort [self]; the runtime re-runs the transaction *)
  | Wait of int
      (** spin for this many backoff units, then re-examine.  The
          runtime bounds the spin and re-checks [self]'s own status so
          a waiter that got aborted notices promptly. *)

type t = {
  name : string;
  resolve : self:Desc.t -> other:Desc.t -> attempt:int -> decision;
}

val older : Desc.t -> Desc.t -> bool
(** [older a b] — strictly older by [(birth, tid)]; the total order
    every timestamp manager arbitrates on. *)

val of_policy : Dtm_online.Policy.t -> t
(** Adapt a scheduling policy:

    - [Timestamp { preemption = true }] — the Greedy manager: the
      older transaction always wins immediately ([Abort_other] /
      [Abort_self]).  No waiting, no deadlock, the globally oldest
      transaction is never aborted.
    - [Timestamp { preemption = false }] — polite timestamp: bounded
      waiting first (the grant is "irrevocable" for a while, matching
      the non-preemptive online engine), then age decides.
    - [Window_greedy] — priority is [(window of birth, seeded
      per-window hash, tid)]; lower wins outright.  The randomized
      within-window priorities break adversarial age chains exactly as
      in the online engine.
    - [Backoff] — the Polite manager of Scherer-Scott: randomized
      exponential backoff via {!Dtm_online.Policy.backoff_delay} for
      [limit] attempts, then claim the object outright.
    - [Random_grant] — a seeded coin on the (unordered) pair of tids
      picks the winner; stable across retries, so the loser can only
      get through once the winner resolves.
    - [Nearest] — has no shared-memory analogue (there is no object
      position between domains); falls back to Greedy and says so in
      its [name]. *)
