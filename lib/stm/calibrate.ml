(* A multiply-xor chain: each iteration depends on the previous one, so
   neither the compiler nor the CPU can collapse the loop, and
   [Sys.opaque_identity] keeps the result observable. *)
let spin k =
  let acc = ref 0x9e3779b9 in
  for i = 1 to k do
    acc := (!acc * 0x1000193) lxor i
  done;
  ignore (Sys.opaque_identity !acc)

let measure_once iters =
  let t0 = Unix.gettimeofday () in
  spin iters;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int iters

let cached = Atomic.make None

let ns_per_unit () =
  match Atomic.get cached with
  | Some v -> v
  | None ->
    spin 200_000 (* warm-up *);
    let rounds = Array.init 5 (fun _ -> measure_once 1_000_000) in
    Array.sort compare rounds;
    let v = Float.max 0.05 rounds.(2) in
    (* Racing initializations agree closely; first one published wins. *)
    ignore (Atomic.compare_and_set cached None (Some v));
    (match Atomic.get cached with Some v -> v | None -> v)

let units_for ~target_ns =
  if target_ns < 0.0 then invalid_arg "Calibrate.units_for: negative target";
  max 1 (int_of_float (target_ns /. ns_per_unit ()))
