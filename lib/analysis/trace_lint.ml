module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Graph = Dtm_graph.Graph
module Metric = Dtm_graph.Metric
module Trace = Dtm_sim.Trace

(* One chronological walk drives DTM110-113 and accumulates per-object
   travel for DTM114; DTM115 works on the commit times afterwards.
   Findings are collected per code and concatenated in code order, each
   list chronological. *)

let check ?capacity ~graph ~metric inst ~commits trace =
  let n = Graph.n graph in
  let w = Instance.num_objects inst in
  let count, time, phase, obj, node, dest = Trace.raw trace in
  let teleport = ref [] and bad_hop = ref [] in
  let cap_exceeded = ref [] and premature = ref [] in
  let add acc d = acc := d :: !acc in
  let diagf acc code ?obj ?node ?step fmt =
    Printf.ksprintf
      (fun msg ->
        add acc (Diagnostic.make ~loc:(Location.make ?obj ?node ?step ()) code msg))
      fmt
  in
  (* Per-object motion state: current position, and when in flight the
     departure node/time and destination. *)
  let pos = Array.init (max w 1) (fun o -> if o < w then Instance.home inst o else 0) in
  let flying = Array.make (max w 1) false in
  let fdep_node = Array.make (max w 1) 0 in
  let fdep_time = Array.make (max w 1) 0 in
  let fdest = Array.make (max w 1) 0 in
  let travelled = Array.make (max w 1) 0 in
  (* Departures per undirected edge per step, for the capacity audit. *)
  let dep_counts = Hashtbl.create 64 in
  let leg_weight u v =
    match Graph.edge_weight graph u v with
    | Some wt -> wt
    | None -> Metric.dist metric u v
  in
  for i = 0 to count - 1 do
    let t = time.(i) in
    match phase.(i) with
    | 0 ->
      (* Arrive. *)
      let o = obj.(i) and v = node.(i) in
      if o < 0 || o >= w || v < 0 || v >= n then
        diagf teleport Code.Trace_teleport ~step:t
          "arrival of unknown object %d or node %d" o v
      else if not flying.(o) then
        diagf teleport Code.Trace_teleport ~obj:o ~node:v ~step:t
          "object %d arrives at node %d without departing" o v
      else begin
        if v <> fdest.(o) then
          diagf teleport Code.Trace_teleport ~obj:o ~node:v ~step:t
            "object %d departed toward node %d but arrives at node %d"
            o fdest.(o) v
        else begin
          let u = fdep_node.(o) in
          (match Graph.edge_weight graph u v with
          | None ->
            diagf bad_hop Code.Trace_bad_hop ~obj:o ~node:v ~step:t
              "object %d hops %d -> %d, not an edge of the graph" o u v
          | Some wt ->
            if t - fdep_time.(o) <> wt then
              diagf bad_hop Code.Trace_bad_hop ~obj:o ~node:v ~step:t
                "object %d crosses %d -> %d in %d steps, edge weight is %d"
                o u v (t - fdep_time.(o)) wt);
          travelled.(o) <- travelled.(o) + leg_weight u v
        end;
        flying.(o) <- false;
        pos.(o) <- v
      end
    | 1 ->
      (* Execute. *)
      let v = node.(i) in
      if v >= 0 && v < n then begin
        match Instance.txn_at inst v with
        | None -> ()
        | Some needed ->
          Array.iter
            (fun o ->
              if flying.(o) then
                diagf premature Code.Trace_premature_commit ~obj:o ~node:v
                  ~step:t
                  "node %d executes at step %d while object %d is still in \
                   flight"
                  v t o
              else if pos.(o) <> v then
                diagf premature Code.Trace_premature_commit ~obj:o ~node:v
                  ~step:t
                  "node %d executes at step %d but object %d is at node %d"
                  v t o pos.(o))
            needed
      end
    | _ ->
      (* Depart. *)
      let o = obj.(i) and u = node.(i) and d = dest.(i) in
      if o < 0 || o >= w || u < 0 || u >= n || d < 0 || d >= n then
        diagf teleport Code.Trace_teleport ~step:t
          "departure of unknown object %d or nodes %d -> %d" o u d
      else begin
        if flying.(o) then
          diagf teleport Code.Trace_teleport ~obj:o ~node:u ~step:t
            "object %d departs from node %d while still in flight" o u
        else if pos.(o) <> u then
          diagf teleport Code.Trace_teleport ~obj:o ~node:u ~step:t
            "object %d departs from node %d but is at node %d" o u pos.(o);
        flying.(o) <- true;
        fdep_node.(o) <- u;
        fdep_time.(o) <- t;
        fdest.(o) <- d;
        (match capacity with
        | None -> ()
        | Some cap ->
          let key = (min u d, max u d, t) in
          let c = 1 + (try Hashtbl.find dep_counts key with Not_found -> 0) in
          Hashtbl.replace dep_counts key c;
          if c = cap + 1 then
            diagf cap_exceeded Code.Trace_capacity_exceeded ~node:u ~step:t
              "edge %d-%d admits more than %d objects at step %d"
              (min u d) (max u d) cap t)
      end
  done;
  Array.iteri
    (fun o fl ->
      if fl && o < w then
        diagf teleport Code.Trace_teleport ~obj:o ~node:fdep_node.(o)
          ~step:fdep_time.(o)
          "object %d departs from node %d and never arrives" o fdep_node.(o))
    flying;
  (* DTM114/115 need the full commit order. *)
  let cost_mismatch = ref [] and unserializable = ref [] in
  let all_committed =
    Array.for_all
      (fun v -> Schedule.time commits v <> None)
      (Instance.txn_nodes inst)
  in
  if all_committed && Instance.num_txns inst > 0 then begin
    let expected = Dtm_core.Cost.per_object_travel metric inst commits in
    for o = 0 to w - 1 do
      if Array.length (Instance.requesters inst o) > 0
         && travelled.(o) <> expected.(o)
      then
        diagf cost_mismatch Code.Trace_cost_mismatch ~obj:o
          "object %d travels distance %d in the trace, Cost arithmetic \
           gives %d"
          o travelled.(o) expected.(o)
    done;
    (* Conflict-serializability: per object, users must occupy distinct
       steps; the per-object precedence edges (earlier user -> later
       user) must compose into an acyclic relation.  With distinct steps
       the relation embeds in time order, so we only run the explicit
       cycle check when no step is shared. *)
    let ties = ref false in
    let edges = ref [] in
    for o = 0 to w - 1 do
      let reqs = Array.copy (Instance.requesters inst o) in
      Array.sort
        (fun a b ->
          let c = compare (Schedule.time_exn commits a) (Schedule.time_exn commits b) in
          if c <> 0 then c else compare a b)
        reqs;
      for i = 0 to Array.length reqs - 2 do
        let a = reqs.(i) and b = reqs.(i + 1) in
        if Schedule.time_exn commits a = Schedule.time_exn commits b then begin
          ties := true;
          diagf unserializable Code.Trace_unserializable ~obj:o ~node:b
            ~step:(Schedule.time_exn commits a)
            "conflicting transactions at nodes %d and %d both commit at \
             step %d over object %d"
            a b (Schedule.time_exn commits a) o
        end
        else edges := (a, b) :: !edges
      done
    done;
    if not !ties then begin
      (* Kahn's algorithm over the precedence edges. *)
      let indeg = Hashtbl.create 16 and out = Hashtbl.create 16 in
      let bump t k d =
        Hashtbl.replace t k (d + (try Hashtbl.find t k with Not_found -> 0))
      in
      List.iter
        (fun (a, b) ->
          bump indeg b 1;
          if not (Hashtbl.mem indeg a) then Hashtbl.replace indeg a 0;
          Hashtbl.replace out a (b :: (try Hashtbl.find out a with Not_found -> [])))
        !edges;
      let queue = Queue.create () in
      Hashtbl.iter (fun v d -> if d = 0 then Queue.add v queue) indeg;
      let removed = ref 0 in
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        incr removed;
        List.iter
          (fun b ->
            let d = Hashtbl.find indeg b - 1 in
            Hashtbl.replace indeg b d;
            if d = 0 then Queue.add b queue)
          (try Hashtbl.find out v with Not_found -> [])
      done;
      if !removed < Hashtbl.length indeg then begin
        let witness = ref (-1) in
        Hashtbl.iter
          (fun v d ->
            if d > 0 && (!witness < 0 || v < !witness) then witness := v)
          indeg;
        diagf unserializable Code.Trace_unserializable ~node:!witness
          "the commit precedence relation has a cycle through node %d"
          !witness
      end
    end
  end;
  List.concat
    [
      List.rev !teleport;
      List.rev !bad_hop;
      List.rev !cap_exceeded;
      List.rev !premature;
      List.rev !cost_mismatch;
      List.rev !unserializable;
    ]
