(** Static checks on a distance oracle: symmetry, zero diagonal,
    positivity off the diagonal, and the triangle inequality
    ([DTM002]..[DTM004]).

    Every scheduler and bound in the library assumes these; a custom
    matrix that violates them silently breaks travel-time reasoning.
    The closed-form topologies are verified against APSP in tests, so
    for them this is a fast sanity pass; for [Custom] metrics it is the
    primary gate.

    Work is bounded by [budget] primitive distance lookups (default
    200_000): pair checks are exhaustive while they fit, then
    deterministically sampled; triple checks likewise.  Findings are
    deduplicated per code.

    Landmark-backed metrics pay a pruned search per lookup instead of
    an array read, so the budget is scaled down (~200x, floor 64) to
    keep large-n lints fast; in exchange every sampled pair also checks
    the oracle's own bound bracket, [lower <= dist <= upper]
    ([DTM009]). *)

val check : ?budget:int -> Dtm_graph.Metric.t -> Diagnostic.t list
