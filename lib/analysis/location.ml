type t = { obj : int option; node : int option; step : int option }

let none = { obj = None; node = None; step = None }
let make ?obj ?node ?step () = { obj; node; step }

let to_string t =
  let parts =
    List.filter_map
      (fun (label, v) ->
        Option.map (fun x -> Printf.sprintf "%s %d" label x) v)
      [ ("object", t.obj); ("node", t.node); ("step", t.step) ]
  in
  match parts with
  | [] -> ""
  | _ -> "(" ^ String.concat ", " parts ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let subsumes a b =
  let field f = match f a with None -> true | Some x -> f b = Some x in
  field (fun t -> t.obj) && field (fun t -> t.node) && field (fun t -> t.step)
