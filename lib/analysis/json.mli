(** Minimal JSON tree and printer (no external dependency).

    Enough for the analyzer's [--json] output: objects, arrays, and the
    scalar types the diagnostics use.  Strings are escaped per RFC 8259;
    non-finite floats are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Pretty-printed with [indent] spaces per level (default 2). *)
