(** Approximation-certificate checking (paper, Sections 1.1 and 8).

    Every scheduler in [lib/sched] comes with a theorem bounding its
    makespan in closed form ({!Dtm_sched.Bounds}); the paper states each
    as an approximation factor against the certified per-instance lower
    bound.  A {e certificate} instantiates the bound on one concrete
    instance and records everything needed to re-check the claim without
    re-running the scheduler:

    [makespan <= bound = factor * Lower_bound.certified] (up to the
    rounding recorded in [factor]).

    [verify] turns a violated certificate into a [DTM201] error — a bug
    detector for the schedulers themselves (or for the bounds): a
    correct implementation can never trip it, so any occurrence on any
    instance falsifies the implementation against its theorem. *)

type t = {
  scheduler : string;  (** algorithm name, e.g. {!Dtm_sched.Auto.name} *)
  topology : string;  (** e.g. ["grid:8x8"] *)
  makespan : int;
  lower : int;  (** {!Dtm_core.Lower_bound.certified} *)
  bound : int option;
      (** the theorem's closed-form makespan bound instantiated on this
          instance; [None] when no finite bound applies (disconnected
          custom graph) *)
  factor : float;
      (** the implied per-instance approximation factor
          [bound / max 1 lower]; [nan] when [bound = None] *)
}

val theorem_bound : Dtm_topology.Topology.t -> Dtm_core.Instance.t -> int option
(** The closed-form bound proven for {!Dtm_sched.Auto.schedule}'s
    algorithm on this topology: Theorem 1 (clique), Theorem 2 (line and
    the ring extension), Lemma 5 (grid), Lemma 6 (cluster), Theorem 5
    via greedy periods (star), and the Section 3.1 diameter bound for
    everything else.  [None] only for disconnected custom graphs. *)

val make :
  scheduler:string ->
  Dtm_topology.Topology.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  t

val verify : t -> Diagnostic.t list
(** [DTM201] when [makespan > bound]; [DTM202] when [bound = None].
    Empty when the certificate holds. *)

val check_auto :
  ?seed:int ->
  Dtm_topology.Topology.t ->
  Dtm_core.Instance.t ->
  t * Diagnostic.t list
(** Run {!Dtm_sched.Auto.schedule} and check its certificate. *)

val render : t -> string
(** One line for reports, e.g.
    ["certificate: makespan 37 <= bound 161 (factor 11.5 x lower bound 14) [ok]"]. *)

val to_json : t -> Json.t
