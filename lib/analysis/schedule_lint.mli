(** The static schedule analyzer: proves conflict-freedom and
    object-motion feasibility of a schedule from the distance matrix
    alone — no simulator run — and reports {e all} violations with
    stable codes ([DTM101]..[DTM107]).

    The checks are exactly the feasibility conditions of the dynamic
    {!Dtm_core.Validator} (paper, Section 2.1), restated statically on
    {!Dtm_core.Schedule.object_order} and the metric: every transaction
    scheduled, no phantom entries, each object's first requester no
    earlier than its travel time from home, consecutive requesters
    separated by at least their distance, and no two users of an object
    on one step.  Whenever the validator rejects a schedule, this
    analyzer reports at least one [Error] at the same location.

    Beyond the validator it also reports:
    - [DTM106] when the schedule was built for a different node count
      (the dynamic validator would raise instead);
    - [DTM107] (info) when every constraint has slack [s > 0], i.e. the
      whole schedule could start [s] steps earlier. *)

val check :
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  Diagnostic.t list

val errors_only :
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  Diagnostic.t list
(** Just the [Error]-severity findings of {!check}. *)

val is_clean :
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  bool
(** No [Error]-severity findings.  Agrees with
    {!Dtm_core.Validator.is_feasible} on schedules of matching
    capacity. *)
