(** The analysis driver: compose every static analyzer over one
    (topology, instance, optional schedule) triple and produce a
    {!Report.t}.

    This is what [dtm analyze] and the experiment gate call.  Order:
    metric lints, instance lints, schedule lints (when a schedule is
    given), certificate verification (when a certificate is given or
    [`Auto] scheduling is requested). *)

val run :
  ?jobs:int ->
  ?schedule:Dtm_core.Schedule.t ->
  ?certificate:Certificate.t ->
  ?metric_budget:int ->
  Dtm_topology.Topology.t ->
  Dtm_core.Instance.t ->
  Report.t
(** Analyze the instance (and schedule, when given) on the topology.
    [certificate], when given, is verified and its findings merged.
    [jobs] is forwarded to the lower-bound engine the instance lints may
    invoke; by default that engine fans out on the shared default pool
    ([-j N]), with identical results at any parallelism. *)

val run_auto :
  ?seed:int ->
  Dtm_topology.Topology.t ->
  Dtm_core.Instance.t ->
  Report.t * Dtm_core.Schedule.t * Certificate.t
(** Schedule with {!Dtm_sched.Auto}, then run the full analysis
    including the certificate check. *)

val quick :
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  Report.t
(** The topology-free subset (instance + schedule lints, no metric
    sweep, no certificate) — cheap enough to gate every experiment
    measurement. *)
