(** Lints on a problem instance against its metric and (optionally) its
    topology: reachability of homes ([DTM001]), degenerate workloads
    ([DTM005], [DTM006]), hub-capacity hazards on star/cluster carriers
    ([DTM007]), and deviation from the paper's initial-placement
    convention ([DTM008]).

    [lower], when given, is the instance's certified lower bound
    (computed by the caller, typically shared with the certificate
    check); it feeds the hub-overload threshold.  When absent it is
    computed on demand only if the topology has a hub. *)

val check :
  ?jobs:int ->
  ?topo:Dtm_topology.Topology.t ->
  ?lower:int ->
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Diagnostic.t list
(** [jobs] is forwarded to {!Dtm_core.Lower_bound.certified} when the
    hub-overload check needs an on-demand lower bound. *)
