(** Severity levels for static diagnostics.

    [Error] findings make an analysis run fail (non-zero CLI exit, the
    experiment gate trips); [Warning]s flag hazards that do not falsify
    the run; [Info]s are observations (e.g. an optimization the schedule
    leaves on the table). *)

type t = Info | Warning | Error

val compare : t -> t -> int
(** [Info < Warning < Error]. *)

val max : t -> t -> t

val to_string : t -> string
(** Lowercase: ["info"], ["warning"], ["error"] — the JSON encoding. *)

val pp : Format.formatter -> t -> unit
