module Instance = Dtm_core.Instance
module Metric = Dtm_graph.Metric
module Topology = Dtm_topology.Topology

let max_per_code = 8

(* Minimum number of times mobile objects must pass through the
   topology's hub: on a star, an object requested on [r] distinct rays
   crosses the center at least [r - 1] times; on a cluster graph, an
   object requested in [c] distinct clusters crosses bridge edges at
   least [c - 1] times.  The certified lower bound sees travel time but
   not this funneling, so a large transit count is a congestion hazard
   the bound cannot certify against. *)
let hub_transits topo inst =
  let count group_of =
    let total = ref 0 in
    for o = 0 to Instance.num_objects inst - 1 do
      let groups =
        Array.to_list (Instance.requesters inst o)
        |> List.filter_map group_of
        |> List.sort_uniq compare
      in
      total := !total + max 0 (List.length groups - 1)
    done;
    !total
  in
  match topo with
  | Topology.Star p -> Some ("star center", count (Dtm_topology.Star.ray_of p))
  | Topology.Cluster p ->
    Some
      ( "cluster bridges",
        count (fun v -> Some (Dtm_topology.Cluster.cluster_of p v)) )
  | _ -> None

let check ?jobs ?topo ?lower metric inst =
  let out = ref [] in
  let counts = Hashtbl.create 4 in
  let add code mk =
    let c = Option.value ~default:0 (Hashtbl.find_opt counts code) in
    if c < max_per_code then begin
      Hashtbl.replace counts code (c + 1);
      out := mk () :: !out
    end
  in
  if Instance.num_txns inst = 0 then
    add Code.Empty_instance (fun () ->
        Diagnostic.make Code.Empty_instance "instance has no transactions");
  let away_from_requesters = ref 0 in
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    if Array.length reqs = 0 then
      add Code.Unrequested_object (fun () ->
          Diagnostic.makef Code.Unrequested_object
            ~loc:(Location.make ~obj:o ())
            "object %d is requested by no transaction" o)
    else begin
      let home = Instance.home inst o in
      Array.iter
        (fun r ->
          if Metric.dist metric home r = max_int then
            add Code.Unreachable_home (fun () ->
                Diagnostic.makef Code.Unreachable_home
                  ~loc:(Location.make ~obj:o ~node:r ())
                  "object %d cannot reach requester %d from home %d" o r home))
        reqs;
      if not (Array.exists (fun r -> r = home) reqs) then
        incr away_from_requesters
    end
  done;
  if !away_from_requesters > 0 then
    add Code.Home_not_at_requester (fun () ->
        Diagnostic.makef Code.Home_not_at_requester
          "%d requested object%s start away from all requesters (paper \
           convention places homes at requesters)"
          !away_from_requesters
          (if !away_from_requesters = 1 then "" else "s"));
  (match Option.bind topo (fun t -> hub_transits t inst) with
  | Some (hub, transits) when transits > 0 ->
    let lb =
      match lower with
      | Some l -> l
      | None -> Dtm_core.Lower_bound.certified ?jobs metric inst
    in
    if transits > max 1 lb then
      add Code.Hub_overload (fun () ->
          Diagnostic.makef Code.Hub_overload
            "objects must cross the %s %d times, above the certified lower \
             bound %d — under per-edge capacity limits execution will \
             degrade"
            hub transits lb)
  | _ -> ());
  List.rev !out
