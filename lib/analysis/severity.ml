type t = Info | Warning | Error

let rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare a b = Int.compare (rank a) (rank b)
let max a b = if compare a b >= 0 then a else b

let to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let pp fmt t = Format.pp_print_string fmt (to_string t)
