type t = {
  code : Code.t;
  severity : Severity.t;
  message : string;
  loc : Location.t;
}

let make ?severity ?(loc = Location.none) code message =
  let severity =
    match severity with Some s -> s | None -> Code.default_severity code
  in
  { code; severity; message; loc }

let makef ?severity ?loc code fmt =
  Printf.ksprintf (fun message -> make ?severity ?loc code message) fmt

let is_error t = t.severity = Severity.Error

let compare a b =
  let c = Severity.compare b.severity a.severity in
  if c <> 0 then c
  else
    let c = String.compare (Code.id a.code) (Code.id b.code) in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.loc b.loc in
      if c <> 0 then c else String.compare a.message b.message

let render t =
  let loc = Location.to_string t.loc in
  Printf.sprintf "%s %s %s: %s%s"
    (Severity.to_string t.severity)
    (Code.id t.code) (Code.title t.code) t.message
    (if loc = "" then "" else " " ^ loc)

let to_json t =
  let opt name v fields =
    match v with Some x -> (name, Json.Int x) :: fields | None -> fields
  in
  Json.Obj
    ([
       ("code", Json.String (Code.id t.code));
       ("title", Json.String (Code.title t.code));
       ("severity", Json.String (Severity.to_string t.severity));
       ("message", Json.String t.message);
     ]
    @ opt "object" t.loc.Location.obj
        (opt "node" t.loc.Location.node
           (opt "step" t.loc.Location.step [])))
