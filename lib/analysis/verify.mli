(** The whole-pipeline correctness gate behind [dtm verify].

    One call stacks every layer of checking the library has on a single
    (topology, instance, schedule) triple:

    + the static analyses of {!Analyze.run} (metric, instance, schedule
      lints and the theorem certificate);
    + a {!Dtm_sim.Replay} execution on the explicit graph, audited by
      the DTM11x {!Trace_lint}s;
    + a {!Dtm_sim.Congestion} execution under bounded capacity, audited
      likewise including the per-edge capacity bound (DTM112);
    + the DTM12x small-scope {!Model_check} against the certified lower
      bound, when the instance is small enough.

    The passes are independent and fan out on the shared domain pool
    ([Dtm_util.Pool]), merged in the order above — the report is
    byte-identical at any [-j]. *)

type t = {
  report : Report.t;
  makespan : int;  (** of the schedule under audit *)
  lower : int;  (** certified lower bound used for the model pass *)
  replay_events : int;  (** length of the audited replay trace *)
  congestion_makespan : int;  (** realized steps under bounded capacity *)
  congestion_events : int;  (** length of the audited congestion trace *)
  optimum : int option;  (** model checker's true optimum, when in scope *)
}

val run :
  ?jobs:int ->
  ?capacity:int ->
  Dtm_topology.Topology.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  t
(** [run topo inst sched] audits [sched] end to end.  [capacity]
    (default 1) bounds the congestion execution; [jobs] is forwarded to
    the lower-bound engine.  The congestion run uses the schedule as its
    priority order, so its commit times are audited against the same
    conflict structure. *)
