(** Stable diagnostic codes.

    Every finding the analyzers can emit has a code [DTMxxx] that is
    stable across releases — scripts and CI configurations may match on
    it.  Codes are grouped by the hundreds digit:

    - [DTM0xx] — instance / topology / metric lints;
    - [DTM10x] — static schedule analysis;
    - [DTM11x] — execution-trace lints (motion, capacity, commit order);
    - [DTM12x] — small-scope model checking;
    - [DTM2xx] — approximation-certificate checking.

    The default severity of a code reflects what it falsifies: [Error]
    codes contradict the model's definitions or a theorem, [Warning]
    codes flag hazards, [Info] codes are observations. *)

type t =
  | Unreachable_home
      (** DTM001: an object cannot travel from its home to a requester
          (infinite distance — disconnected carrier graph). *)
  | Metric_asymmetry  (** DTM002: [dist u v <> dist v u]. *)
  | Metric_degenerate
      (** DTM003: [dist v v <> 0], or a non-positive distance between
          distinct nodes. *)
  | Triangle_violation
      (** DTM004: [dist u w > dist u v + dist v w] — the claimed metric
          is not a metric, so shortest-path travel times are wrong. *)
  | Empty_instance  (** DTM005: no node holds a transaction. *)
  | Unrequested_object
      (** DTM006: an object no transaction requests (degenerate
          workload; lower bounds ignore it but generators should not
          produce it). *)
  | Hub_overload
      (** DTM007: on a star/cluster topology, the number of forced
          transits through the hub (center or bridge edges) exceeds the
          certified lower bound — congestion the bound does not see. *)
  | Home_not_at_requester
      (** DTM008: some requested object starts away from all of its
          requesters — deviates from the paper's usual initial
          placement (Section 2.1). *)
  | Oracle_bound_violation
      (** DTM009: a landmark oracle's O(L) bound bracket excludes the
          exact distance it reports — the rows and the search disagree,
          so pruning is unsound. *)
  | Unscheduled_txn  (** DTM101: a transaction has no execution step. *)
  | Phantom_entry
      (** DTM102: the schedule assigns a step to a node that holds no
          transaction. *)
  | Early_first_use
      (** DTM103: an object's first requester executes before the
          object can arrive from its home. *)
  | Motion_infeasible
      (** DTM104: consecutive requesters of one object are scheduled
          closer in time than the distance between them. *)
  | Step_conflict
      (** DTM105: two users of one object share a time step. *)
  | Capacity_mismatch
      (** DTM106: the schedule was built for a different node count
          than the instance. *)
  | Shiftable_start
      (** DTM107: every constraint has slack >= s > 0, so the whole
          schedule can run [s] steps earlier — the makespan is not
          tight. *)
  | Trace_teleport
      (** DTM110: an execution trace moves an object discontinuously —
          it departs from a node it does not occupy, arrives without a
          matching departure, or is used away from its position. *)
  | Trace_bad_hop
      (** DTM111: a traced hop is not an edge of the communication
          graph, or its flight time differs from the edge weight. *)
  | Trace_capacity_exceeded
      (** DTM112: more simultaneous traversals on one link than its
          capacity admits (checked when a capacity is given; [Replay]
          traces are deliberately unbounded). *)
  | Trace_premature_commit
      (** DTM113: a transaction executes before every object it
          requests has physically arrived at its node. *)
  | Trace_cost_mismatch
      (** DTM114: the per-object distance travelled in the trace
          disagrees with [Cost.per_object_travel] for the same commit
          order — the simulator and the metric arithmetic diverge. *)
  | Trace_unserializable
      (** DTM115: the traced commit order is not conflict-serializable:
          two conflicting transactions share a step, or the per-object
          precedence relation has a cycle. *)
  | Model_suboptimal
      (** DTM120: exhaustive search found a strictly shorter feasible
          schedule — the one under audit is not optimal (informational:
          approximation algorithms are allowed to be off by their
          factor). *)
  | Model_infeasible
      (** DTM121: the schedule is not reachable in the synchronous
          state space — some commit fires before its objects can be
          serviced, or two conflicting commits share a slot. *)
  | Model_unsound_bound
      (** DTM122: a claimed lower bound exceeds the true optimum found
          by exhaustive search — the bound is unsound. *)
  | Model_scope_exceeded
      (** DTM123: the instance exceeds the model checker's exhaustive
          scope (more than {!Model_check.max_transactions} txns), so
          optimality was not verified. *)
  | Certificate_violation
      (** DTM201: a schedule's makespan exceeds the theorem bound its
          scheduler claims — a bug in the scheduler (or the bound). *)
  | Certificate_unavailable
      (** DTM202: no finite theorem bound applies (e.g. a disconnected
          custom graph), so the certificate cannot be checked. *)

val all : t list
(** Every code, in [DTM] order. *)

val id : t -> string
(** The stable identifier, e.g. ["DTM105"]. *)

val of_id : string -> t option

val default_severity : t -> Severity.t

val title : t -> string
(** Short kebab-case name, e.g. ["step-conflict"]. *)

val describe : t -> string
(** One-sentence documentation, used by [dtm analyze --codes] and the
    DESIGN.md code table. *)
