type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (key, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape key);
          Buffer.add_string buf "\": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf
