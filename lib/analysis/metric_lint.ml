module Metric = Dtm_graph.Metric

(* Cap the number of findings per code: one bad metric otherwise floods
   the report with O(n^3) near-identical lines. *)
let max_per_code = 8

let check ?(budget = 200_000) metric =
  let n = Metric.size metric in
  let out = ref [] in
  let counts = Hashtbl.create 4 in
  let add code mk =
    let c = Option.value ~default:0 (Hashtbl.find_opt counts code) in
    if c < max_per_code then begin
      Hashtbl.replace counts code (c + 1);
      out := mk () :: !out
    end
  in
  let dist = Metric.dist metric in
  (* Landmark queries run a pruned search each, not an array read: keep
     the same coverage *shape* but spend ~200x fewer probes so linting a
     10^5-node oracle stays sub-second.  The oracle's own bound bracket
     is checked on every sampled pair in exchange. *)
  let landmark = Metric.is_landmark metric in
  let budget = if landmark then max 64 (budget / 200) else budget in
  let check_bounds u v =
    if landmark then begin
      let lo = Metric.lower_bound metric u v
      and hi = Metric.upper_bound metric u v
      and d = dist u v in
      if lo > d || d > hi then
        add Code.Oracle_bound_violation (fun () ->
            Diagnostic.makef Code.Oracle_bound_violation
              ~loc:(Location.make ~node:u ())
              "landmark bracket [%d, %d] excludes dist %d->%d = %d" lo hi u v
              d)
    end
  in
  let check_pair u v =
    if u <> v then begin
      check_bounds u v;
      let duv = dist u v and dvu = dist v u in
      if duv <> dvu then
        add Code.Metric_asymmetry (fun () ->
            Diagnostic.makef Code.Metric_asymmetry
              ~loc:(Location.make ~node:u ())
              "dist %d->%d is %d but dist %d->%d is %d" u v duv v u dvu);
      if duv <= 0 then
        add Code.Metric_degenerate (fun () ->
            Diagnostic.makef Code.Metric_degenerate
              ~loc:(Location.make ~node:u ())
              "distinct nodes %d and %d at non-positive distance %d" u v duv)
    end
  in
  let check_diag v =
    let d = dist v v in
    if d <> 0 then
      add Code.Metric_degenerate (fun () ->
          Diagnostic.makef Code.Metric_degenerate
            ~loc:(Location.make ~node:v ())
            "node %d at distance %d from itself" v d)
  in
  let check_triple u v w =
    let a = dist u v and b = dist v w and c = dist u w in
    (* Skip unreachable legs (max_int): reachability is DTM001's job and
       the sums would overflow. *)
    if a < max_int && b < max_int && c < max_int && c > a + b then
      add Code.Triangle_violation (fun () ->
          Diagnostic.makef Code.Triangle_violation
            ~loc:(Location.make ~node:u ())
            "dist %d->%d = %d exceeds dist via %d = %d + %d" u w c v a b)
  in
  if n > 0 then begin
    for v = 0 to n - 1 do
      check_diag v
    done;
    if n * n <= budget then
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          check_pair u v
        done
      done
    else begin
      let rng = Dtm_util.Prng.create ~seed:0 in
      for _ = 1 to budget / 2 do
        check_pair (Dtm_util.Prng.int rng n) (Dtm_util.Prng.int rng n)
      done
    end;
    if n * n * n <= budget then
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          for w = 0 to n - 1 do
            check_triple u v w
          done
        done
      done
    else begin
      let rng = Dtm_util.Prng.create ~seed:1 in
      for _ = 1 to budget / 3 do
        check_triple (Dtm_util.Prng.int rng n) (Dtm_util.Prng.int rng n)
          (Dtm_util.Prng.int rng n)
      done
    end
  end;
  List.rev !out
