module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Metric = Dtm_graph.Metric

let max_transactions = 8

(* A state of the synchronous execution is (committed set, per-object
   position + release step).  Committing v from a state is deterministic
   given the choice of v, so the reachable space is the set of commit
   orders — but unlike [Optimal.exhaustive]'s permutation walk, the
   search below explores it as a DAG keyed by (mask, positions) with
   Pareto dominance over (releases, running makespan), which collapses
   permutations that leave the objects in the same place. *)
let optimum metric inst =
  let txns = Instance.txn_nodes inst in
  let k = Array.length txns in
  if k > max_transactions then
    invalid_arg "Model_check.optimum: too many transactions";
  if k = 0 then 0
  else begin
    (* Track only requested objects, densely re-indexed. *)
    let w = Instance.num_objects inst in
    let tracked = Array.make w (-1) in
    let m = ref 0 in
    for o = 0 to w - 1 do
      if Array.length (Instance.requesters inst o) > 0 then begin
        tracked.(o) <- !m;
        incr m
      end
    done;
    let m = !m in
    let needed =
      Array.map
        (fun v ->
          match Instance.txn_at inst v with
          | None -> [||]
          | Some objs -> Array.map (fun o -> tracked.(o)) objs)
        txns
    in
    let home = Array.make m 0 in
    for o = 0 to w - 1 do
      if tracked.(o) >= 0 then home.(tracked.(o)) <- Instance.home inst o
    done;
    let full = (1 lsl k) - 1 in
    let best = ref max_int in
    (* Pareto memo: per (mask, positions), the undominated (releases,
       makespan) pairs seen so far. *)
    let memo : (int * int array, (int array * int) list) Hashtbl.t =
      Hashtbl.create 1024
    in
    let dominated key rel cur =
      match Hashtbl.find_opt memo key with
      | None -> false
      | Some entries ->
        List.exists
          (fun (r, c) ->
            c <= cur
            &&
            let ok = ref true in
            for i = 0 to m - 1 do
              if r.(i) > rel.(i) then ok := false
            done;
            !ok)
          entries
    in
    let record key rel cur =
      let entries =
        match Hashtbl.find_opt memo key with None -> [] | Some e -> e
      in
      let kept =
        List.filter
          (fun (r, c) ->
            not
              (cur <= c
              &&
              let ok = ref true in
              for i = 0 to m - 1 do
                if rel.(i) > r.(i) then ok := false
              done;
              !ok))
          entries
      in
      Hashtbl.replace memo key ((Array.copy rel, cur) :: kept)
    in
    let rec go mask pos rel cur =
      if cur < !best then
        if mask = full then best := cur
        else begin
          let key = (mask, pos) in
          if not (dominated key rel cur) then begin
            record key rel cur;
            for ti = 0 to k - 1 do
              if mask land (1 lsl ti) = 0 then begin
                let v = txns.(ti) in
                let t = ref 1 in
                Array.iter
                  (fun i ->
                    let a = rel.(i) + Metric.dist metric pos.(i) v in
                    if a > !t then t := a)
                  needed.(ti);
                let t = !t in
                let pos' = Array.copy pos and rel' = Array.copy rel in
                Array.iter
                  (fun i ->
                    pos'.(i) <- v;
                    rel'.(i) <- t)
                  needed.(ti);
                go (mask lor (1 lsl ti)) pos' rel' (max cur t)
              end
            done
          end
        end
    in
    go 0 home (Array.make m 0) 0;
    !best
  end

let diag code ?obj ?node ?step fmt =
  Printf.ksprintf
    (fun msg -> Diagnostic.make ~loc:(Location.make ?obj ?node ?step ()) code msg)
    fmt

let certify ?lower metric inst sched =
  let k = Instance.num_txns inst in
  if k > max_transactions then
    ( None,
      [
        diag Code.Model_scope_exceeded
          "%d transactions exceed the exhaustive scope bound of %d; \
           optimality not verified"
          k max_transactions;
      ] )
  else begin
    let opt = optimum metric inst in
    let findings = ref [] in
    let add d = findings := d :: !findings in
    (* Reachability: replay the schedule as model transitions in commit
       order.  A commit before its objects can be serviced — including
       a conflicting commit sharing the slot of the previous user, whose
       release then exceeds the slot — is not a reachable execution. *)
    let txns = Instance.txn_nodes inst in
    let unscheduled = ref false in
    Array.iter
      (fun v ->
        if Schedule.time sched v = None then begin
          unscheduled := true;
          add
            (diag Code.Model_infeasible ~node:v
               "transaction at node %d has no commit step, so the schedule \
                is not an execution"
               v)
        end)
      txns;
    if not !unscheduled then begin
      let order = Array.copy txns in
      Array.sort
        (fun a b ->
          let c = compare (Schedule.time_exn sched a) (Schedule.time_exn sched b) in
          if c <> 0 then c else compare a b)
        order;
      let w = Instance.num_objects inst in
      let pos = Array.init (max w 1) (fun o -> if o < w then Instance.home inst o else 0) in
      let rel = Array.make (max w 1) 0 in
      Array.iter
        (fun v ->
          let t = Schedule.time_exn sched v in
          (match Instance.txn_at inst v with
          | None -> ()
          | Some objs ->
            Array.iter
              (fun o ->
                let a = rel.(o) + Metric.dist metric pos.(o) v in
                if a > t || t < 1 then
                  add
                    (diag Code.Model_infeasible ~obj:o ~node:v ~step:t
                       "node %d commits at step %d but object %d cannot be \
                        serviced before step %d"
                       v t o (max a 1));
                pos.(o) <- v;
                rel.(o) <- max t a)
              objs))
        order;
      let feasible =
        not (List.exists (fun d -> d.Diagnostic.code = Code.Model_infeasible) !findings)
      in
      let mk = Schedule.makespan sched in
      if feasible && mk > opt then
        add
          (diag Code.Model_suboptimal ~step:mk
             "makespan %d is feasible but exhaustive search finds %d" mk opt)
    end;
    (match lower with
    | Some l when l > opt ->
      add
        (diag Code.Model_unsound_bound
           "claimed lower bound %d exceeds the true optimum %d" l opt)
    | _ -> ());
    (Some opt, List.rev !findings)
  end
