type t =
  | Unreachable_home
  | Metric_asymmetry
  | Metric_degenerate
  | Triangle_violation
  | Empty_instance
  | Unrequested_object
  | Hub_overload
  | Home_not_at_requester
  | Oracle_bound_violation
  | Unscheduled_txn
  | Phantom_entry
  | Early_first_use
  | Motion_infeasible
  | Step_conflict
  | Capacity_mismatch
  | Shiftable_start
  | Trace_teleport
  | Trace_bad_hop
  | Trace_capacity_exceeded
  | Trace_premature_commit
  | Trace_cost_mismatch
  | Trace_unserializable
  | Model_suboptimal
  | Model_infeasible
  | Model_unsound_bound
  | Model_scope_exceeded
  | Certificate_violation
  | Certificate_unavailable

let all =
  [
    Unreachable_home;
    Metric_asymmetry;
    Metric_degenerate;
    Triangle_violation;
    Empty_instance;
    Unrequested_object;
    Hub_overload;
    Home_not_at_requester;
    Oracle_bound_violation;
    Unscheduled_txn;
    Phantom_entry;
    Early_first_use;
    Motion_infeasible;
    Step_conflict;
    Capacity_mismatch;
    Shiftable_start;
    Trace_teleport;
    Trace_bad_hop;
    Trace_capacity_exceeded;
    Trace_premature_commit;
    Trace_cost_mismatch;
    Trace_unserializable;
    Model_suboptimal;
    Model_infeasible;
    Model_unsound_bound;
    Model_scope_exceeded;
    Certificate_violation;
    Certificate_unavailable;
  ]

let id = function
  | Unreachable_home -> "DTM001"
  | Metric_asymmetry -> "DTM002"
  | Metric_degenerate -> "DTM003"
  | Triangle_violation -> "DTM004"
  | Empty_instance -> "DTM005"
  | Unrequested_object -> "DTM006"
  | Hub_overload -> "DTM007"
  | Home_not_at_requester -> "DTM008"
  | Oracle_bound_violation -> "DTM009"
  | Unscheduled_txn -> "DTM101"
  | Phantom_entry -> "DTM102"
  | Early_first_use -> "DTM103"
  | Motion_infeasible -> "DTM104"
  | Step_conflict -> "DTM105"
  | Capacity_mismatch -> "DTM106"
  | Shiftable_start -> "DTM107"
  | Trace_teleport -> "DTM110"
  | Trace_bad_hop -> "DTM111"
  | Trace_capacity_exceeded -> "DTM112"
  | Trace_premature_commit -> "DTM113"
  | Trace_cost_mismatch -> "DTM114"
  | Trace_unserializable -> "DTM115"
  | Model_suboptimal -> "DTM120"
  | Model_infeasible -> "DTM121"
  | Model_unsound_bound -> "DTM122"
  | Model_scope_exceeded -> "DTM123"
  | Certificate_violation -> "DTM201"
  | Certificate_unavailable -> "DTM202"

let of_id s = List.find_opt (fun c -> id c = s) all

let default_severity = function
  | Unreachable_home | Metric_asymmetry | Metric_degenerate
  | Triangle_violation | Oracle_bound_violation | Unscheduled_txn | Phantom_entry | Early_first_use
  | Motion_infeasible | Step_conflict | Capacity_mismatch
  | Trace_teleport | Trace_bad_hop | Trace_capacity_exceeded
  | Trace_premature_commit | Trace_cost_mismatch | Trace_unserializable
  | Model_infeasible | Model_unsound_bound | Certificate_violation ->
    Severity.Error
  | Empty_instance | Unrequested_object | Hub_overload
  | Certificate_unavailable ->
    Severity.Warning
  | Home_not_at_requester | Shiftable_start | Model_suboptimal
  | Model_scope_exceeded ->
    Severity.Info

let title = function
  | Unreachable_home -> "unreachable-home"
  | Metric_asymmetry -> "metric-asymmetry"
  | Metric_degenerate -> "metric-degenerate"
  | Triangle_violation -> "triangle-violation"
  | Empty_instance -> "empty-instance"
  | Unrequested_object -> "unrequested-object"
  | Hub_overload -> "hub-overload"
  | Home_not_at_requester -> "home-not-at-requester"
  | Oracle_bound_violation -> "oracle-bound-violation"
  | Unscheduled_txn -> "unscheduled-transaction"
  | Phantom_entry -> "phantom-entry"
  | Early_first_use -> "early-first-use"
  | Motion_infeasible -> "motion-infeasible"
  | Step_conflict -> "step-conflict"
  | Capacity_mismatch -> "capacity-mismatch"
  | Shiftable_start -> "shiftable-start"
  | Trace_teleport -> "trace-teleport"
  | Trace_bad_hop -> "trace-bad-hop"
  | Trace_capacity_exceeded -> "trace-capacity-exceeded"
  | Trace_premature_commit -> "trace-premature-commit"
  | Trace_cost_mismatch -> "trace-cost-mismatch"
  | Trace_unserializable -> "trace-unserializable"
  | Model_suboptimal -> "model-suboptimal"
  | Model_infeasible -> "model-infeasible"
  | Model_unsound_bound -> "model-unsound-bound"
  | Model_scope_exceeded -> "model-scope-exceeded"
  | Certificate_violation -> "certificate-violation"
  | Certificate_unavailable -> "certificate-unavailable"

let describe = function
  | Unreachable_home ->
    "an object cannot travel from its home node to one of its requesters \
     (infinite distance)"
  | Metric_asymmetry -> "the distance oracle is not symmetric"
  | Metric_degenerate ->
    "a node is at non-zero distance from itself, or two distinct nodes are \
     at non-positive distance"
  | Triangle_violation ->
    "the distance oracle violates the triangle inequality, so object \
     travel times are not shortest-path times"
  | Empty_instance -> "the instance has no transactions"
  | Unrequested_object -> "an object is requested by no transaction"
  | Hub_overload ->
    "forced object transits through the hub (star center / cluster \
     bridges) exceed the certified lower bound"
  | Home_not_at_requester ->
    "a requested object starts away from all of its requesters, deviating \
     from the paper's initial-placement convention"
  | Oracle_bound_violation ->
    "a landmark oracle's cheap bound bracket excludes the exact distance \
     it reports (lower > dist or dist > upper)"
  | Unscheduled_txn -> "a transaction is not assigned an execution step"
  | Phantom_entry ->
    "the schedule assigns a step to a node that holds no transaction"
  | Early_first_use ->
    "an object's first requester executes before the object can arrive \
     from its home"
  | Motion_infeasible ->
    "consecutive requesters of one object are scheduled closer in time \
     than the distance between them"
  | Step_conflict -> "two users of one object share a time step"
  | Capacity_mismatch ->
    "the schedule was created for a different node count than the instance"
  | Shiftable_start ->
    "every release and arrival constraint has positive slack, so the \
     whole schedule can be shifted earlier"
  | Trace_teleport ->
    "an execution trace moves an object discontinuously: it departs from \
     a node it does not occupy, arrives without a matching departure, or \
     is used away from its current position"
  | Trace_bad_hop ->
    "a traced hop does not follow the communication graph: the endpoints \
     are not adjacent or the flight time differs from the edge weight"
  | Trace_capacity_exceeded ->
    "more simultaneous traversals were traced on one link than its \
     capacity admits"
  | Trace_premature_commit ->
    "a transaction executes before every object it requests has \
     physically arrived at its node"
  | Trace_cost_mismatch ->
    "the distance travelled in the trace disagrees with the metric-level \
     Cost arithmetic for the same commit order"
  | Trace_unserializable ->
    "the traced commit order is not conflict-serializable: conflicting \
     transactions share a step or the precedence relation has a cycle"
  | Model_suboptimal ->
    "exhaustive state-space search found a strictly shorter feasible \
     schedule than the one under audit"
  | Model_infeasible ->
    "the schedule is not reachable in the synchronous-execution state \
     space: some commit happens before its objects can be serviced"
  | Model_unsound_bound ->
    "a claimed lower bound exceeds the true optimum found by exhaustive \
     search, so the bound is unsound"
  | Model_scope_exceeded ->
    "the instance is too large for exhaustive model checking, so optimality \
     was not verified"
  | Certificate_violation ->
    "the makespan exceeds the theorem bound claimed for this scheduler \
     and topology"
  | Certificate_unavailable ->
    "no finite theorem bound applies to this topology, so the certificate \
     cannot be checked"
