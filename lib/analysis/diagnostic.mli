(** A single typed finding: code + severity + message + location.

    The severity defaults to the code's {!Code.default_severity} but can
    be overridden (e.g. a CI profile promoting warnings).  Renderers are
    deterministic so findings can be snapshot-tested. *)

type t = {
  code : Code.t;
  severity : Severity.t;
  message : string;
  loc : Location.t;
}

val make : ?severity:Severity.t -> ?loc:Location.t -> Code.t -> string -> t

val makef :
  ?severity:Severity.t ->
  ?loc:Location.t ->
  Code.t ->
  ('a, unit, string, t) format4 ->
  'a
(** [makef code fmt ...] — printf-style message. *)

val is_error : t -> bool

val compare : t -> t -> int
(** Errors first, then code order, then location, then message. *)

val render : t -> string
(** One line: ["error DTM105 step-conflict: ... (object 3, node 7)"]. *)

val to_json : t -> Json.t
