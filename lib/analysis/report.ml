type t = Diagnostic.t list (* sorted, deduplicated *)

let empty = []

let of_diagnostics ds =
  let sorted = List.sort Diagnostic.compare ds in
  let rec dedup = function
    | a :: (b :: _ as rest) when Diagnostic.compare a b = 0 -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let merge a b = of_diagnostics (a @ b)
let diagnostics t = t
let count t sev = List.length (List.filter (fun d -> d.Diagnostic.severity = sev) t)
let total = List.length
let errors t = List.filter Diagnostic.is_error t
let has_errors t = errors t <> []

let summary t =
  let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
  Printf.sprintf "%s, %s, %s"
    (plural (count t Severity.Error) "error")
    (plural (count t Severity.Warning) "warning")
    (plural (count t Severity.Info) "info")

let render t =
  match t with
  | [] -> "no findings\n"
  | _ ->
    String.concat ""
      (List.map (fun d -> Diagnostic.render d ^ "\n") t)
    ^ summary t ^ "\n"

let to_json ?(extra = []) t =
  Json.Obj
    (extra
    @ [
        ( "summary",
          Json.Obj
            [
              ("errors", Json.Int (count t Severity.Error));
              ("warnings", Json.Int (count t Severity.Warning));
              ("infos", Json.Int (count t Severity.Info));
            ] );
        ("diagnostics", Json.List (List.map Diagnostic.to_json t));
      ])

let exit_code t = if has_errors t then 1 else 0
