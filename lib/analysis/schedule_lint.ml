module Instance = Dtm_core.Instance
module Schedule = Dtm_core.Schedule
module Metric = Dtm_graph.Metric

let check metric inst sched =
  let out = ref [] in
  let add d = out := d :: !out in
  let n = Instance.n inst in
  let cap = Schedule.capacity sched in
  if cap <> n then
    add
      (Diagnostic.makef Code.Capacity_mismatch
         "schedule was created for %d nodes but the instance has %d" cap n);
  let time v = if v < cap then Schedule.time sched v else None in
  (* Every transaction scheduled; nothing else scheduled. *)
  for v = 0 to n - 1 do
    match (Instance.txn_at inst v, time v) with
    | Some _, None ->
      add
        (Diagnostic.makef Code.Unscheduled_txn
           ~loc:(Location.make ~node:v ())
           "transaction at node %d is not scheduled" v)
    | None, Some t ->
      add
        (Diagnostic.makef Code.Phantom_entry
           ~loc:(Location.make ~node:v ~step:t ())
           "node %d holds no transaction but is scheduled at step %d" v t)
    | _ -> ()
  done;
  for v = n to cap - 1 do
    match Schedule.time sched v with
    | Some t ->
      add
        (Diagnostic.makef Code.Phantom_entry
           ~loc:(Location.make ~node:v ~step:t ())
           "node %d is outside the instance but scheduled at step %d" v t)
    | None -> ()
  done;
  (* Per-object itineraries, plus the global shift slack. *)
  let slack = ref max_int in
  let note_slack s = if s < !slack then slack := s in
  List.iter
    (fun v ->
      match time v with Some t -> note_slack (t - 1) | None -> ())
    (List.init (min n cap) Fun.id);
  for o = 0 to Instance.num_objects inst - 1 do
    let reqs = Instance.requesters inst o in
    let all_scheduled = Array.for_all (fun r -> time r <> None) reqs in
    if all_scheduled && Array.length reqs > 0 then begin
      let order = Schedule.object_order sched ~requesters:reqs in
      (match order with
      | [] -> ()
      | first :: _ ->
        let t1 = Schedule.time_exn sched first in
        let d = Metric.dist metric (Instance.home inst o) first in
        let needed = if d = max_int then max_int else max 1 d in
        let loc = Location.make ~obj:o ~node:first ~step:t1 () in
        if d = max_int then
          add
            (Diagnostic.makef Code.Early_first_use ~loc
               "object %d can never reach its first requester %d (scheduled \
                at step %d)"
               o first t1)
        else if t1 < needed then
          add
            (Diagnostic.makef Code.Early_first_use ~loc
               "object %d reaches its first requester %d no earlier than \
                step %d but it is scheduled at step %d"
               o first needed t1)
        else note_slack (t1 - needed));
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          let ta = Schedule.time_exn sched a and tb = Schedule.time_exn sched b in
          let d = Metric.dist metric a b in
          if ta = tb then
            add
              (Diagnostic.makef Code.Step_conflict
                 ~loc:(Location.make ~obj:o ~node:b ~step:tb ())
                 "object %d is used by nodes %d and %d on the same step %d" o
                 a b tb)
          else if tb - ta < d then
            add
              (Diagnostic.makef Code.Motion_infeasible
                 ~loc:(Location.make ~obj:o ~node:b ~step:tb ())
                 "object %d must travel %s from node %d (step %d) to node %d \
                  (step %d)"
                 o
                 (if d = max_int then "an unreachable path"
                  else Printf.sprintf "%d steps" d)
                 a ta b tb);
          pairs rest
        | _ -> ()
      in
      pairs order
    end
  done;
  let findings = List.rev !out in
  let has_errors = List.exists Diagnostic.is_error findings in
  if (not has_errors) && !slack > 0 && !slack < max_int then
    findings
    @ [
        Diagnostic.makef Code.Shiftable_start
          "every release and arrival constraint has slack >= %d: the whole \
           schedule can be shifted %d step%s earlier"
          !slack !slack
          (if !slack = 1 then "" else "s");
      ]
  else findings

let errors_only metric inst sched =
  List.filter Diagnostic.is_error (check metric inst sched)

let is_clean metric inst sched = errors_only metric inst sched = []
