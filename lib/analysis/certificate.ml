module Schedule = Dtm_core.Schedule
module Topology = Dtm_topology.Topology
module Bounds = Dtm_sched.Bounds

type t = {
  scheduler : string;
  topology : string;
  makespan : int;
  lower : int;
  bound : int option;
  factor : float;
}

let theorem_bound topo inst =
  match topo with
  | Topology.Clique _ -> Some (Bounds.clique inst)
  | Topology.Line _ -> Some (Bounds.line inst)
  | Topology.Ring n -> Some (Bounds.ring ~n inst)
  | Topology.Grid { rows; cols } -> Some (Bounds.grid ~rows ~cols inst)
  | Topology.Cluster p -> Some (Bounds.cluster_approach1 p inst)
  | Topology.Star p -> Some (Bounds.star p inst)
  | Topology.Torus _ | Topology.Hypercube _ | Topology.Butterfly _
  | Topology.Tree _ | Topology.Hypergrid _ | Topology.Block_grid _
  | Topology.Block_tree _ | Topology.Power_law _ ->
    Some (Bounds.diameter (Topology.metric topo) inst)
  | Topology.Custom { graph; _ } ->
    if Dtm_graph.Graph.is_connected graph then
      Some (Bounds.diameter (Topology.metric topo) inst)
    else None

let make ~scheduler topo inst sched =
  let metric = Topology.metric topo in
  let lower = Dtm_core.Lower_bound.certified metric inst in
  let bound = theorem_bound topo inst in
  {
    scheduler;
    topology = Topology.to_string topo;
    makespan = Schedule.makespan sched;
    lower;
    bound;
    factor =
      (match bound with
      | Some b -> float_of_int b /. float_of_int (max 1 lower)
      | None -> Float.nan);
  }

let verify t =
  match t.bound with
  | None ->
    [
      Diagnostic.makef Code.Certificate_unavailable
        "no finite theorem bound for %s on %s: certificate not checked"
        t.scheduler t.topology;
    ]
  | Some b when t.makespan > b ->
    [
      Diagnostic.makef Code.Certificate_violation
        "%s on %s produced makespan %d, above its theorem bound %d \
         (claimed factor %.2f x certified lower bound %d) — the scheduler \
         violates its theorem"
        t.scheduler t.topology t.makespan b t.factor t.lower;
    ]
  | Some _ -> []

let check_auto ?(seed = 0) topo inst =
  let sched = Dtm_sched.Auto.schedule ~seed topo inst in
  let t = make ~scheduler:(Dtm_sched.Auto.name topo) topo inst sched in
  (t, verify t)

let render t =
  match t.bound with
  | None ->
    Printf.sprintf "certificate: unavailable for %s on %s" t.scheduler
      t.topology
  | Some b ->
    Printf.sprintf
      "certificate: makespan %d <= bound %d (factor %.2f x lower bound %d) \
       [%s]"
      t.makespan b t.factor t.lower
      (if t.makespan <= b then "ok" else "VIOLATED")

let to_json t =
  Json.Obj
    [
      ("scheduler", Json.String t.scheduler);
      ("topology", Json.String t.topology);
      ("makespan", Json.Int t.makespan);
      ("lower_bound", Json.Int t.lower);
      ("bound", match t.bound with Some b -> Json.Int b | None -> Json.Null);
      ("factor", Json.Float t.factor);
      ( "holds",
        match t.bound with
        | Some b -> Json.Bool (t.makespan <= b)
        | None -> Json.Null );
    ]
