(** An analysis report: the sorted findings of one run plus renderers
    and the exit-code policy ([Error] present => non-zero). *)

type t

val empty : t

val of_diagnostics : Diagnostic.t list -> t
(** Sorts (errors first) and deduplicates identical findings. *)

val merge : t -> t -> t

val diagnostics : t -> Diagnostic.t list

val count : t -> Severity.t -> int

val total : t -> int

val has_errors : t -> bool

val errors : t -> Diagnostic.t list

val summary : t -> string
(** ["2 errors, 1 warning, 0 infos"]. *)

val render : t -> string
(** Human text: one line per finding, then the summary line.  A clean
    report renders as ["no findings"]. *)

val to_json : ?extra:(string * Json.t) list -> t -> Json.t
(** [{"summary": {...}, "diagnostics": [...], ...extra}]. *)

val exit_code : t -> int
(** 1 when the report has errors, else 0. *)
