module Topology = Dtm_topology.Topology
module Schedule = Dtm_core.Schedule

type t = {
  report : Report.t;
  makespan : int;
  lower : int;
  replay_events : int;
  congestion_makespan : int;
  congestion_events : int;
  optimum : int option;
}

(* Each pass returns its findings plus the numbers the caller reports;
   the variant keeps [Pool.run]'s result list typed. *)
type pass_out =
  | Static of Report.t
  | Replayed of int * Diagnostic.t list
  | Congested of int * int * Diagnostic.t list
  | Modeled of int * int option * Diagnostic.t list

let run ?jobs ?(capacity = 1) topo inst sched =
  let metric = Topology.metric topo in
  let graph = Topology.graph topo in
  let certificate =
    Certificate.make ~scheduler:(Dtm_sched.Auto.name topo) topo inst sched
  in
  let passes =
    [
      (fun () -> Static (Analyze.run ?jobs ~schedule:sched ~certificate topo inst));
      (fun () ->
        let r = Dtm_sim.Replay.run graph inst sched in
        let findings =
          Trace_lint.check ~graph ~metric inst ~commits:sched r.Dtm_sim.Replay.trace
        in
        Replayed (Dtm_sim.Trace.length r.Dtm_sim.Replay.trace, findings));
      (fun () ->
        let c = Dtm_sim.Congestion.run ~capacity graph inst ~priority:sched in
        let findings =
          Trace_lint.check ~capacity ~graph ~metric inst
            ~commits:c.Dtm_sim.Congestion.commit_times c.Dtm_sim.Congestion.trace
        in
        Congested
          ( c.Dtm_sim.Congestion.makespan,
            Dtm_sim.Trace.length c.Dtm_sim.Congestion.trace,
            findings ));
      (fun () ->
        let lower = Dtm_core.Lower_bound.certified ?jobs metric inst in
        let optimum, findings = Model_check.certify ~lower metric inst sched in
        Modeled (lower, optimum, findings));
    ]
  in
  let outs = Dtm_util.Pool.run (fun f -> f ()) passes in
  let report = ref Report.empty in
  let lower = ref 0 and replay_events = ref 0 in
  let congestion_makespan = ref 0 and congestion_events = ref 0 in
  let optimum = ref None in
  List.iter
    (fun out ->
      match out with
      | Static r -> report := Report.merge !report r
      | Replayed (events, findings) ->
        replay_events := events;
        report := Report.merge !report (Report.of_diagnostics findings)
      | Congested (mk, events, findings) ->
        congestion_makespan := mk;
        congestion_events := events;
        report := Report.merge !report (Report.of_diagnostics findings)
      | Modeled (lb, opt, findings) ->
        lower := lb;
        optimum := opt;
        report := Report.merge !report (Report.of_diagnostics findings))
    outs;
  {
    report = !report;
    makespan = Schedule.makespan sched;
    lower = !lower;
    replay_events = !replay_events;
    congestion_makespan = !congestion_makespan;
    congestion_events = !congestion_events;
    optimum = !optimum;
  }
