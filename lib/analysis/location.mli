(** Where a finding points: an object, a node, a time step — any subset.

    Mirrors the coordinates of the DTM model (there are no source files
    to point at): analyses locate findings on the instance/schedule
    being analyzed. *)

type t = { obj : int option; node : int option; step : int option }

val none : t

val make : ?obj:int -> ?node:int -> ?step:int -> unit -> t

val to_string : t -> string
(** ["(object 3, node 7, step 9)"] with absent fields omitted; [""] for
    {!none}. *)

val pp : Format.formatter -> t -> unit

val subsumes : t -> t -> bool
(** [subsumes a b]: every field set in [a] is set to the same value in
    [b] (used by tests to match analyzer findings against dynamic
    validator verdicts). *)
