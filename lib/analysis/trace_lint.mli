(** DTM11x: lints over step-level execution traces.

    The static lints check what a schedule {e claims}; these check what
    an engine {e did}.  Any {!Dtm_sim.Trace.t} — from {!Dtm_sim.Replay},
    {!Dtm_sim.Congestion}, or the metric-routed {!Dtm_sim.Walker} — can
    be audited against the instance and the commit times it was produced
    under:

    - DTM110 [trace-teleport]: every object's events form a connected
      walk from its home — departures leave the node the object is at,
      arrivals land where it was headed, nothing moves while in flight;
    - DTM111 [trace-bad-hop]: every hop is an edge of the communication
      graph and takes exactly its weight;
    - DTM112 [trace-capacity-exceeded]: at most [capacity] departures
      per undirected edge per step (only when [capacity] is given —
      [Replay]/[Walker] traces are deliberately unbounded);
    - DTM113 [trace-premature-commit]: when a transaction executes,
      every object it requests is present at its node (same-step
      arrivals count: the chronological order sorts arrive < execute <
      depart within a step);
    - DTM114 [trace-cost-mismatch]: each object's travelled distance
      equals [Cost.per_object_travel] for the commit order — the
      simulator and the metric arithmetic must agree;
    - DTM115 [trace-unserializable]: the commit order is
      conflict-serializable — users of one object never share a step,
      and the induced precedence relation is acyclic.

    DTM114/115 need every requester committed; both are skipped (no
    findings) when [commits] leaves a transaction of the instance
    unscheduled, as replayers skip those chains too. *)

val check :
  ?capacity:int ->
  graph:Dtm_graph.Graph.t ->
  metric:Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  commits:Dtm_core.Schedule.t ->
  Dtm_sim.Trace.t ->
  Diagnostic.t list
(** [check ~graph ~metric inst ~commits trace] — all findings, in
    chronological order of the offending event within each pass, passes
    in DTM code order.  [metric] must be [graph]'s shortest-path metric;
    [commits] are the execution steps the trace was produced under (the
    schedule for [Replay]/[Walker], [commit_times] for [Congestion]). *)
