module Topology = Dtm_topology.Topology

let run ?jobs ?schedule ?certificate ?metric_budget topo inst =
  let metric = Topology.metric topo in
  let lower =
    Option.map (fun (c : Certificate.t) -> c.Certificate.lower) certificate
  in
  (* The four analyzers are independent: fan them out on the domain
     pool ([-j N]) and merge in the documented order — metric, instance,
     schedule, certificate — so the report is identical at any
     parallelism. *)
  let passes =
    [
      (fun () -> Metric_lint.check ?budget:metric_budget metric);
      (fun () -> Instance_lint.check ?jobs ~topo ?lower metric inst);
      (fun () ->
        match schedule with
        | Some s -> Schedule_lint.check metric inst s
        | None -> []);
      (fun () ->
        match certificate with Some c -> Certificate.verify c | None -> []);
    ]
  in
  Report.of_diagnostics (List.concat (Dtm_util.Pool.run (fun f -> f ()) passes))

let run_auto ?(seed = 0) topo inst =
  let sched = Dtm_sched.Auto.schedule ~seed topo inst in
  let cert =
    Certificate.make ~scheduler:(Dtm_sched.Auto.name topo) topo inst sched
  in
  (run ~schedule:sched ~certificate:cert topo inst, sched, cert)

let quick metric inst sched =
  Report.of_diagnostics
    (Instance_lint.check metric inst @ Schedule_lint.check metric inst sched)
