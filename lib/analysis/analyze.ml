module Topology = Dtm_topology.Topology

let run ?schedule ?certificate ?metric_budget topo inst =
  let metric = Topology.metric topo in
  let lower =
    Option.map (fun (c : Certificate.t) -> c.Certificate.lower) certificate
  in
  let findings =
    Metric_lint.check ?budget:metric_budget metric
    @ Instance_lint.check ~topo ?lower metric inst
    @ (match schedule with
      | Some s -> Schedule_lint.check metric inst s
      | None -> [])
    @ match certificate with Some c -> Certificate.verify c | None -> []
  in
  Report.of_diagnostics findings

let run_auto ?(seed = 0) topo inst =
  let sched = Dtm_sched.Auto.schedule ~seed topo inst in
  let cert =
    Certificate.make ~scheduler:(Dtm_sched.Auto.name topo) topo inst sched
  in
  (run ~schedule:sched ~certificate:cert topo inst, sched, cert)

let quick metric inst sched =
  Report.of_diagnostics
    (Instance_lint.check metric inst @ Schedule_lint.check metric inst sched)
