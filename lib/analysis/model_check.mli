(** DTM12x: small-scope exhaustive model checking.

    For instances with at most {!max_transactions} transactions the
    synchronous-execution state space is small enough to enumerate: a
    state is (set of committed transactions, per-object position and
    release step), and committing transaction [v] from a state takes
    until [max 1 (max over its objects of release + dist(position, v))]
    — the earliest step every object can have been serviced, exactly the
    list-scheduling semantics of [Engine].  Exhausting the space gives
    the {e true} optimal makespan, independently of the permutation
    search in [Optimal.exhaustive] (the two are cross-validated in the
    test suite), and certifies any schedule against it:

    - DTM121 [model-infeasible] (error): the schedule is not a reachable
      execution — a commit fires before its objects can be serviced, or
      two transactions sharing an object commit in the same slot;
    - DTM120 [model-suboptimal] (info): the schedule is feasible but a
      strictly shorter execution exists;
    - DTM122 [model-unsound-bound] (error): a claimed lower bound
      exceeds the true optimum;
    - DTM123 [model-scope-exceeded] (info): too many transactions to
      enumerate, nothing was checked. *)

val max_transactions : int
(** Scope bound (8): beyond this the search is skipped. *)

val optimum : Dtm_graph.Metric.t -> Dtm_core.Instance.t -> int
(** True optimal makespan by exhaustive reachable-state search with
    dominance pruning.  0 for an empty instance.  Raises
    [Invalid_argument] when the instance has more than
    {!max_transactions} transactions. *)

val certify :
  ?lower:int ->
  Dtm_graph.Metric.t ->
  Dtm_core.Instance.t ->
  Dtm_core.Schedule.t ->
  int option * Diagnostic.t list
(** [certify metric inst sched] is [(optimum, findings)].  [optimum] is
    [None] (with a DTM123 finding) when the instance exceeds the scope
    bound, otherwise the true optimal makespan.  [lower], when given, is
    additionally checked for soundness against the optimum (DTM122). *)
